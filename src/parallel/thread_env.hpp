// Thread-count management for the OpenMP execution environment.
//
// The paper runs the CPU experiments with "80 threads" on a 2x10-core
// hyper-threaded Xeon. On smaller hosts the interesting quantities
// (round counts, work, relative speedups between algorithms) are
// thread-count independent; this module just makes the count explicit,
// overridable, and restorable.
#pragma once

namespace sbg {

/// Number of OpenMP threads parallel regions will use right now.
int num_threads();

/// Maximum hardware concurrency OpenMP reports.
int max_threads();

/// Set the global OpenMP thread count. Values < 1 are clamped to 1.
void set_num_threads(int n);

/// Reads SBG_THREADS from the environment (if set and positive) and applies
/// it; returns the thread count in effect afterwards. Called once by
/// benches/examples so users can steer runs without recompiling.
int apply_thread_env();

/// RAII guard: switch to `n` threads for a scope, restore on destruction.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int saved_;
};

}  // namespace sbg
