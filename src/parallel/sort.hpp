// Parallel merge sort. Graph construction sorts edge lists that can reach
// hundreds of millions of entries at full dataset scale; this is a simple
// task-parallel top-down merge sort (sequential std::sort below a grain,
// parallel two-way merge by midpoint splitting above it).
#pragma once

#include <algorithm>
#include <iterator>
#include <vector>

#include <omp.h>

namespace sbg {

namespace detail_sort {

inline constexpr std::size_t kSortGrain = 1 << 14;

/// Merge [first1, last1) and [first2, last2) into out, splitting the
/// larger input at its midpoint and binary-searching the split point in
/// the other — both halves merge in parallel tasks.
template <typename It, typename Out, typename Less>
void parallel_merge(It first1, It last1, It first2, It last2, Out out,
                    const Less& less) {
  const auto n1 = static_cast<std::size_t>(last1 - first1);
  const auto n2 = static_cast<std::size_t>(last2 - first2);
  if (n1 + n2 < kSortGrain) {
    std::merge(first1, last1, first2, last2, out, less);
    return;
  }
  if (n1 < n2) {
    parallel_merge(first2, last2, first1, last1, out, less);
    return;
  }
  It mid1 = first1 + static_cast<std::ptrdiff_t>(n1 / 2);
  It mid2 = std::lower_bound(first2, last2, *mid1, less);
  const auto out_mid = out + (mid1 - first1) + (mid2 - first2);
#pragma omp task default(shared) if (n1 + n2 >= 4 * kSortGrain)
  parallel_merge(first1, mid1, first2, mid2, out, less);
  parallel_merge(mid1, last1, mid2, last2, out_mid, less);
#pragma omp taskwait
}

template <typename It, typename Buf, typename Less>
void sort_into(It first, It last, Buf buf, bool result_in_buf,
               const Less& less) {
  const auto n = static_cast<std::size_t>(last - first);
  if (n < kSortGrain) {
    std::sort(first, last, less);
    if (result_in_buf) std::copy(first, last, buf);
    return;
  }
  It mid = first + static_cast<std::ptrdiff_t>(n / 2);
  const auto buf_mid = buf + (mid - first);
  // Children leave their results in the *opposite* array, so this level's
  // merge reads from one array and writes the other — no extra copies.
#pragma omp task default(shared) if (n >= 4 * kSortGrain)
  sort_into(first, mid, buf, !result_in_buf, less);
  sort_into(mid, last, buf_mid, !result_in_buf, less);
#pragma omp taskwait
  if (result_in_buf) {
    parallel_merge(first, mid, mid, last, buf, less);
  } else {
    parallel_merge(buf, buf_mid, buf_mid, buf + (last - first), first, less);
  }
}

}  // namespace detail_sort

/// Sort `data` in place with a task-parallel merge sort.
template <typename T, typename Less = std::less<T>>
void parallel_sort(std::vector<T>& data, Less less = Less{}) {
  if (data.size() < detail_sort::kSortGrain) {
    std::sort(data.begin(), data.end(), less);
    return;
  }
  std::vector<T> buffer(data.size());
#pragma omp parallel
#pragma omp single nowait
  detail_sort::sort_into(data.begin(), data.end(), buffer.begin(),
                         /*result_in_buf=*/false, less);
}

}  // namespace sbg
