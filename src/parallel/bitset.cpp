#include "parallel/bitset.hpp"

#include <bit>

#include "parallel/parallel_for.hpp"

namespace sbg {

ConcurrentBitset::ConcurrentBitset(std::size_t n_bits)
    : n_bits_(n_bits), words_((n_bits + 63) / 64) {
  clear();
}

void ConcurrentBitset::clear() {
  parallel_for(words_.size(), [&](std::size_t w) {
    words_[w].store(0, std::memory_order_relaxed);
  });
}

std::size_t ConcurrentBitset::count() const {
  std::size_t total = 0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t w = 0; w < static_cast<std::int64_t>(words_.size()); ++w) {
    total += static_cast<std::size_t>(std::popcount(
        words_[static_cast<std::size_t>(w)].load(std::memory_order_relaxed)));
  }
  return total;
}

}  // namespace sbg
