// Parallel prefix sums. The two-pass block algorithm: per-thread block sums,
// sequential scan over the (tiny) block-sum array, then per-thread rescan.
// Used by every subgraph-extraction and frontier-compaction step.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <omp.h>

namespace sbg {

/// In-place exclusive prefix sum over `data`; returns the total.
/// data[i] becomes sum of the original data[0..i).
template <typename T>
T exclusive_prefix_sum(std::span<T> data) {
  const std::size_t n = data.size();
  if (n == 0) return T{0};
  if (n < 1u << 14) {  // sequential fast path
    T run{0};
    for (std::size_t i = 0; i < n; ++i) {
      const T v = data[i];
      data[i] = run;
      run += v;
    }
    return run;
  }
  T total{0};
  std::vector<T> block_sums(
      static_cast<std::size_t>(omp_get_max_threads()) + 1, T{0});
#pragma omp parallel
  {
    const std::size_t t = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t nt = static_cast<std::size_t>(omp_get_num_threads());
    const std::size_t lo = n * t / nt;
    const std::size_t hi = n * (t + 1) / nt;
    T local{0};
    for (std::size_t i = lo; i < hi; ++i) local += data[i];
    block_sums[t + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (std::size_t i = 1; i <= nt; ++i) block_sums[i] += block_sums[i - 1];
      total = block_sums[nt];
    }
    T run = block_sums[t];
    for (std::size_t i = lo; i < hi; ++i) {
      const T v = data[i];
      data[i] = run;
      run += v;
    }
  }
  return total;
}

/// Exclusive prefix sum of `counts` into a fresh (n+1)-element offsets array:
/// offsets[0] = 0, offsets[i] = counts[0] + ... + counts[i-1].
template <typename T, typename C>
std::vector<T> offsets_from_counts(const std::vector<C>& counts) {
  std::vector<T> offsets(counts.size() + 1);
  offsets[0] = T{0};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i + 1] = offsets[i] + static_cast<T>(counts[i]);
  }
  return offsets;
}

}  // namespace sbg
