// Parallel reductions over index ranges.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sbg {

/// Sum of f(i) for i in [0, n).
template <typename T, typename F>
T parallel_sum(std::size_t n, F&& f) {
  T total{0};
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += f(static_cast<std::size_t>(i));
  }
  return total;
}

/// Count of i in [0, n) where pred(i) holds.
template <typename F>
std::size_t parallel_count(std::size_t n, F&& pred) {
  return parallel_sum<std::size_t>(
      n, [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; });
}

/// Max of f(i) for i in [0, n); returns `identity` when n == 0.
template <typename T, typename F>
T parallel_max(std::size_t n, F&& f, T identity) {
  T best = identity;
#pragma omp parallel for schedule(static) reduction(max : best)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const T v = f(static_cast<std::size_t>(i));
    if (v > best) best = v;
  }
  return best;
}

/// Smallest i in [0, n) satisfying pred, or n when none does. Deterministic
/// regardless of thread count (min reduction), so "first violation" reports
/// from the check oracles are stable across schedules. `pred` may be skipped
/// for indices above a thread's current minimum.
template <typename F>
std::size_t parallel_first(std::size_t n, F&& pred) {
  unsigned long long first = n;
#pragma omp parallel for schedule(static) reduction(min : first)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    if (static_cast<unsigned long long>(i) < first &&
        pred(static_cast<std::size_t>(i))) {
      first = static_cast<unsigned long long>(i);
    }
  }
  return static_cast<std::size_t>(first);
}

/// Logical-or: does any i in [0, n) satisfy pred? (no early exit; intended
/// for cheap predicates where a scan beats branch divergence).
template <typename F>
bool parallel_any(std::size_t n, F&& pred) {
  int found = 0;
#pragma omp parallel for schedule(static) reduction(| : found)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    found |= pred(static_cast<std::size_t>(i)) ? 1 : 0;
  }
  return found != 0;
}

}  // namespace sbg
