// Reusable scratch arena for round loops and repeated extractions.
//
// The iterative solvers (Luby, GM, speculative/JP coloring) and the fused
// decomposition kernel all need a handful of n- or m-sized temporaries per
// call. Allocating those with fresh std::vectors costs a malloc plus a
// page-fault sweep on every call — on the composite solvers, which run two
// extend phases back to back, that is pure overhead. A Scratch arena keeps
// the blocks alive between calls and hands out spans by bumping an offset;
// rewinding a Region makes the same bytes available to the next caller.
//
// Usage:
//   Scratch& scratch = Scratch::local();
//   Scratch::Region region(scratch);            // rewinds on scope exit
//   std::span<vid_t> live = scratch.take<vid_t>(n);
//
// Regions nest (stack discipline): an inner Region's rewind returns the
// arena to the exact state its constructor observed. Spans are only valid
// while their Region is alive. Only trivial element types are served; the
// memory is uninitialized unless taken via take_zero / take_fill.
//
// Thread model: Scratch::local() is a thread-local arena, so any number of
// concurrent callers (batch workers, independent std::threads, the main
// thread) each get their own arena and never contend. Solvers take their
// buffers on the calling thread, outside parallel regions; OpenMP workers
// then read/write the spans, which is safe — each arena is only ever
// bumped from its owning thread.
//
// Memory bound: each arena enforces a soft capacity cap (default 256 MiB,
// override with SBG_SCRATCH_CAP bytes or set_capacity_cap). A take may
// exceed the cap — solvers must not fail mid-round — but when the arena
// rewinds to empty, backing blocks are released largest-first until the
// retained capacity fits under the cap, so a worker that once ran a huge
// job does not pin that high-water footprint forever.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common.hpp"
#include "parallel/parallel_for.hpp"

namespace sbg {

class Scratch {
 public:
  Scratch() = default;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  /// Uninitialized span of `count` elements, 64-byte aligned (so spans
  /// handed to different OpenMP loops never share a cache line).
  template <typename T>
  std::span<T> take(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Scratch serves raw memory; element type must be trivial");
    return {static_cast<T*>(take_bytes(count * sizeof(T))), count};
  }

  /// Zero-filled span.
  template <typename T>
  std::span<T> take_zero(std::size_t count) {
    std::span<T> s = take<T>(count);
    std::memset(s.data(), 0, s.size_bytes());
    return s;
  }

  /// Span with every element set to `fill`.
  template <typename T>
  std::span<T> take_fill(std::size_t count, T fill) {
    std::span<T> s = take<T>(count);
    parallel_for(count, [&](std::size_t i) { s[i] = fill; });
    return s;
  }

  /// RAII rewind point. Everything taken after construction is released
  /// (and its bytes become reusable) when the Region is destroyed.
  class Region {
   public:
    explicit Region(Scratch& s) : s_(s), mark_(s.mark()) {}
    ~Region() { s_.rewind(mark_); }
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

   private:
    Scratch& s_;
    std::pair<std::size_t, std::size_t> mark_;
  };

  /// The calling thread's arena. Solvers and kernels share it; nested
  /// Regions keep concurrent users (a composite calling two extends)
  /// disjoint.
  static Scratch& local();

  /// Total bytes of backing blocks currently allocated.
  std::size_t capacity_bytes() const;

  /// Soft retention cap: capacity above this is released when the arena
  /// rewinds to empty. 0 means "release everything on rewind-to-empty".
  void set_capacity_cap(std::size_t bytes);
  std::size_t capacity_cap() const { return cap_; }

  /// Drop every backing block immediately. The caller must guarantee no
  /// live Region / span points into the arena (e.g. a batch worker between
  /// jobs, or a test restoring a clean slate).
  void reset();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> raw;
    std::byte* base = nullptr;  // 64-byte aligned into raw
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  void* take_bytes(std::size_t bytes);
  std::pair<std::size_t, std::size_t> mark() const;
  void rewind(std::pair<std::size_t, std::size_t> m);
  void trim_to_cap();

  static std::size_t default_cap();

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  // block currently being bumped
  std::size_t cap_ = default_cap();
};

}  // namespace sbg
