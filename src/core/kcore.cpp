#include "core/kcore.hpp"

#include <algorithm>

#include "graph/subgraph.hpp"
#include "obs/obs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg {

KcoreDecomposition decompose_kcore(const CsrGraph& g, vid_t k,
                                   unsigned pieces) {
  SBG_SPAN("decompose.kcore");
  Timer timer;
  KcoreDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.core.assign(n, 0);
  d.order.clear();
  d.order.reserve(n);

  // deg[v] = remaining degree in the not-yet-peeled subgraph. Peeled
  // vertices are the ones already appended to the order; `peeled[v]` gates
  // both re-insertion and decrements among a single round's frontier.
  std::vector<vid_t> deg(n);
  std::vector<std::uint8_t> peeled(n, 0);
  parallel_for(n, [&](std::size_t v) {
    deg[v] = g.degree(static_cast<vid_t>(v));
  });

  std::vector<vid_t> cur(n), next(n);
  vid_t level = 0;
  vid_t remaining = n;
  while (remaining > 0) {
    // Seed the level-`level` frontier: every survivor at or under the
    // threshold. pack_index keeps it ascending, so rounds are deterministic.
    std::size_t cur_size = pack_index(
        n, [&](std::size_t v) { return !peeled[v] && deg[v] <= level; },
        std::span<vid_t>(cur));
    while (cur_size > 0) {
      SBG_COUNTER_ADD("decomp.kcore.rounds", 1);
      // The whole frontier peels simultaneously: everyone in it already has
      // remaining degree <= level, so same-round neighbors never owe each
      // other decrements.
      parallel_for(cur_size, [&](std::size_t i) {
        const vid_t v = cur[i];
        peeled[v] = 1;
        d.core[v] = level;
      });
      // A neighbor enters the next frontier exactly when its degree first
      // crosses from level + 1 to level — decrements are atomic, so exactly
      // one peeler observes the crossing.
      std::size_t next_size = 0;
      parallel_for(cur_size, [&](std::size_t i) {
        for (const vid_t w : g.neighbors(cur[i])) {
          if (atomic_read(&peeled[w]) != 0) continue;
          const vid_t before = fetch_add(&deg[w], vid_t(0) - 1);
          if (before == level + 1) {
            next[fetch_add(&next_size, std::size_t{1})] = w;
          }
        }
      });
      d.order.insert(d.order.end(), cur.begin(), cur.begin() + cur_size);
      remaining -= static_cast<vid_t>(cur_size);
      // Crossing order depends on thread schedule; sort to keep the peeling
      // order (and therefore the whole decomposition) deterministic.
      std::sort(next.begin(), next.begin() + static_cast<std::ptrdiff_t>(next_size));
      std::swap(cur, next);
      cur_size = next_size;
    }
    ++level;
  }
  d.degeneracy = n == 0 ? 0 : level - 1;

  d.is_high.assign(n, 0);
  parallel_for(n, [&](std::size_t v) { d.is_high[v] = d.core[v] > k ? 1 : 0; });
  d.num_high = static_cast<vid_t>(
      parallel_count(n, [&](std::size_t v) { return d.is_high[v] != 0; }));

  if (pieces != 0) {
    const auto& high = d.is_high;
    constexpr std::uint8_t kDropSlot = 0xff;
    std::uint8_t slot_hh = kDropSlot, slot_ll = kDropSlot,
                 slot_cross = kDropSlot;
    unsigned slots = 0;
    if (pieces & kKcoreHigh) slot_hh = static_cast<std::uint8_t>(slots++);
    if (pieces & kKcoreLow) slot_ll = static_cast<std::uint8_t>(slots++);
    if (pieces & kKcoreCross) slot_cross = static_cast<std::uint8_t>(slots++);
    std::vector<CsrGraph> parts = split_edges(
        g,
        [&](vid_t u, vid_t v) -> unsigned {
          if (high[u] && high[v]) return slot_hh;
          if (!high[u] && !high[v]) return slot_ll;
          return slot_cross;
        },
        slots);
    if (pieces & kKcoreHigh) d.g_high = std::move(parts[slot_hh]);
    if (pieces & kKcoreLow) d.g_low = std::move(parts[slot_ll]);
    if (pieces & kKcoreCross) d.g_cross = std::move(parts[slot_cross]);
  }
  d.decompose_seconds = timer.seconds();
  return d;
}

std::vector<vid_t> kcore_reference(const CsrGraph& g) {
  // Matula–Beck: bin-sort vertices by degree, peel the minimum repeatedly,
  // sifting neighbors down one bin as their remaining degree drops.
  const vid_t n = g.num_vertices();
  std::vector<vid_t> deg(n), pos(n), vert(n), core(n, 0);
  vid_t max_deg = 0;
  for (vid_t v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<vid_t> bin(static_cast<std::size_t>(max_deg) + 2, 0);
  for (vid_t v = 0; v < n; ++v) ++bin[deg[v]];
  vid_t start = 0;
  for (std::size_t dd = 0; dd < bin.size(); ++dd) {
    const vid_t count = bin[dd];
    bin[dd] = start;
    start += count;
  }
  for (vid_t v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]]++;
    vert[pos[v]] = v;
  }
  for (std::size_t dd = bin.size() - 1; dd > 0; --dd) bin[dd] = bin[dd - 1];
  bin[0] = 0;

  for (vid_t i = 0; i < n; ++i) {
    const vid_t v = vert[i];
    core[v] = deg[v];
    for (const vid_t u : g.neighbors(v)) {
      if (deg[u] <= deg[v]) continue;
      // Swap u with the first vertex of its bin, then shrink its bin.
      const vid_t du = deg[u], pu = pos[u];
      const vid_t pw = bin[du];
      const vid_t w = vert[pw];
      if (u != w) {
        pos[u] = pw;
        vert[pu] = w;
        pos[w] = pu;
        vert[pw] = u;
      }
      ++bin[du];
      --deg[u];
    }
  }
  return core;
}

}  // namespace sbg
