#include "core/bridge.hpp"

#include <algorithm>
#include <omp.h>

#include "bfs/bfs.hpp"
#include "graph/subgraph.hpp"
#include "obs/obs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bitset.hpp"
#include "parallel/compact.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace {

/// BFS forest over all components: parent/level for every vertex.
void bfs_forest(const CsrGraph& g, std::vector<vid_t>& parent,
                std::vector<vid_t>& level) {
  const vid_t n = g.num_vertices();
  parent.assign(n, kNoVertex);
  level.assign(n, kNoVertex);
  std::vector<vid_t> frontier, next;
  std::vector<std::vector<vid_t>> next_local;

  for (vid_t root = 0; root < n; ++root) {
    if (level[root] != kNoVertex) continue;
    level[root] = 0;
    frontier.assign(1, root);
    vid_t depth = 0;
    while (!frontier.empty()) {
      ++depth;
#pragma omp parallel
      {
#pragma omp single
        next_local.assign(static_cast<std::size_t>(omp_get_num_threads()), {});
        auto& local =
            next_local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0;
             i < static_cast<std::int64_t>(frontier.size()); ++i) {
          const vid_t u = frontier[static_cast<std::size_t>(i)];
          for (const vid_t v : g.neighbors(u)) {
            if (atomic_read(&level[v]) == kNoVertex &&
                claim(&level[v], kNoVertex, depth)) {
              parent[v] = u;
              local.push_back(v);
            }
          }
        }
      }
      frontier.clear();
      for (auto& chunk : next_local) {
        frontier.insert(frontier.end(), chunk.begin(), chunk.end());
      }
    }
  }
}

/// Follow the covered-edge chain from x to its first uncovered ancestor,
/// path-halving the skip pointers. Only used by kShortcutWalk.
vid_t jump_covered(vid_t x, const ConcurrentBitset& covered,
                   std::vector<vid_t>& skip) {
  while (covered.test(x)) {
    const vid_t s = atomic_read(&skip[x]);
    if (covered.test(s)) {
      const vid_t ss = atomic_read(&skip[s]);
      atomic_write(&skip[x], ss);  // halving; any stored value stays valid
      x = ss;
    } else {
      x = s;
    }
  }
  return x;
}

/// Step 2 of Algorithm 1: mark every tree edge on the w..LCA..v path of
/// every non-tree edge (w, v). covered[x] == 1 means "edge x->parent[x]
/// is marked".
ConcurrentBitset mark_non_tree_paths(const CsrGraph& g,
                                     const std::vector<vid_t>& parent,
                                     const std::vector<vid_t>& level,
                                     BridgeAlgo algo) {
  const vid_t n = g.num_vertices();
  ConcurrentBitset covered(n);
  std::vector<vid_t> skip;
  const bool shortcut = algo == BridgeAlgo::kShortcutWalk;
  if (shortcut) {
    // skip[x] is always an ancestor reachable from x via covered edges;
    // parent[x] satisfies that trivially whenever covered[x] is set.
    skip = parent;
  }

  parallel_for_dynamic(n, [&](std::size_t ui) {
    const vid_t u = static_cast<vid_t>(ui);
    for (const vid_t v : g.neighbors(u)) {
      if (v <= u) continue;                            // one walk per edge
      if (parent[u] == v || parent[v] == u) continue;  // tree edge
      vid_t x = u, y = v;
      while (x != y) {
        // Advance the deeper endpoint (ties advance x): mark its parent
        // edge and move up. With shortcutting, fast-forward over chains
        // that earlier walks already marked.
        if (level[x] >= level[y]) {
          if (shortcut && covered.test(x)) {
            x = jump_covered(x, covered, skip);
            continue;
          }
          covered.set(x);
          x = parent[x];
        } else {
          if (shortcut && covered.test(y)) {
            y = jump_covered(y, covered, skip);
            continue;
          }
          covered.set(y);
          y = parent[y];
        }
      }
    }
  });
  return covered;
}

std::vector<std::pair<vid_t, vid_t>> collect_bridges(
    const CsrGraph& g, const std::vector<vid_t>& parent,
    const ConcurrentBitset& covered) {
  // A vertex v identifies bridge (v, parent[v]) iff its parent edge exists
  // and was never covered by a non-tree walk. Stable compaction keeps the
  // list in ascending-child order deterministically at every thread count.
  const std::vector<vid_t> children = pack_index(
      g.num_vertices(),
      [&](std::size_t v) {
        return parent[v] != kNoVertex && !covered.test(static_cast<vid_t>(v));
      });
  std::vector<std::pair<vid_t, vid_t>> bridges(children.size());
  parallel_for(children.size(), [&](std::size_t i) {
    bridges[i] = {children[i], parent[children[i]]};
  });
  return bridges;
}

}  // namespace

std::vector<std::pair<vid_t, vid_t>> find_bridges(const CsrGraph& g,
                                                  BridgeAlgo algo) {
  std::vector<vid_t> parent, level;
  bfs_forest(g, parent, level);                                  // STEP 1
  const auto covered = mark_non_tree_paths(g, parent, level, algo);  // STEP 2
  return collect_bridges(g, parent, covered);
}

BridgeDecomposition decompose_bridge(const CsrGraph& g, BridgeAlgo algo) {
  SBG_SPAN("decompose.bridge");
  Timer timer;
  BridgeDecomposition d;
  const vid_t n = g.num_vertices();

  std::vector<vid_t> parent, level;
  bfs_forest(g, parent, level);
  const auto covered = mark_non_tree_paths(g, parent, level, algo);
  d.bridges = collect_bridges(g, parent, covered);

  d.is_bridge_vertex.assign(n, 0);
  parallel_for(d.bridges.size(), [&](std::size_t i) {
    d.is_bridge_vertex[d.bridges[i].first] = 1;
    d.is_bridge_vertex[d.bridges[i].second] = 1;
  });

  // One fused pass classifies every arc as component (kept in G - B) or
  // bridge: a tree edge (v, parent[v]) is a bridge iff v's parent edge was
  // never covered. Both pieces materialize from the single classification.
  std::vector<CsrGraph> parts = split_edges(
      g,
      [&](vid_t a, vid_t b) {
        const bool bridge = (parent[a] == b && !covered.test(a)) ||
                            (parent[b] == a && !covered.test(b));
        return bridge ? 1u : 0u;
      },
      /*k=*/2);
  d.g_components = std::move(parts[0]);
  d.g_bridges = std::move(parts[1]);
  d.components = connected_components(d.g_components);
  d.decompose_seconds = timer.seconds();
  SBG_HIST_RECORD("bridge.bridges", d.bridges.size());
  return d;
}

std::vector<std::pair<vid_t, vid_t>> bridges_reference(const CsrGraph& g) {
  // Iterative Tarjan: discovery times and low-links over a DFS forest.
  const vid_t n = g.num_vertices();
  std::vector<vid_t> disc(n, kNoVertex), low(n, kNoVertex);
  std::vector<eid_t> next_arc(n, 0);
  std::vector<vid_t> parent(n, kNoVertex);
  std::vector<std::uint8_t> skipped_parent_arc(n, 0);
  std::vector<vid_t> stack;
  std::vector<std::pair<vid_t, vid_t>> bridges;
  vid_t time = 0;

  for (vid_t root = 0; root < n; ++root) {
    if (disc[root] != kNoVertex) continue;
    stack.push_back(root);
    disc[root] = low[root] = time++;
    next_arc[root] = g.arc_begin(root);
    while (!stack.empty()) {
      const vid_t v = stack.back();
      if (next_arc[v] < g.arc_end(v)) {
        const vid_t w = g.arc_head(next_arc[v]++);
        if (disc[w] == kNoVertex) {
          parent[w] = v;
          skipped_parent_arc[w] = 0;
          disc[w] = low[w] = time++;
          next_arc[w] = g.arc_begin(w);
          stack.push_back(w);
        } else if (w != parent[v] || skipped_parent_arc[v]) {
          // Back edge (the graph is simple, so exactly one arc back to the
          // DFS parent is the tree arc; any further would be a multi-edge).
          low[v] = std::min(low[v], disc[w]);
        } else {
          skipped_parent_arc[v] = 1;
        }
      } else {
        stack.pop_back();
        const vid_t p = parent[v];
        if (p != kNoVertex) {
          low[p] = std::min(low[p], low[v]);
          if (low[v] > disc[p]) bridges.emplace_back(v, p);
        }
      }
    }
  }
  return bridges;
}

}  // namespace sbg
