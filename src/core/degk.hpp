// DEGk decomposition (paper Algorithm 3).
//
// Vertices split by degree threshold k into V_H (degree > k) and
// V_L (degree <= k); the decomposition is G_H = G[V_H], G_L = G[V_L], and
// the cross edges G_C. The paper uses k = 2 everywhere: G_L is then a
// disjoint union of paths and cycles, which is what makes the COLOR-Degk
// small-palette trick and the MIS-Deg2 oriented algorithm possible.
//
// Consumers need different pieces (MM/COLOR want G_H and G_L∪G_C; MIS wants
// G_L), so materialization is selectable via `pieces`.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sbg {

/// Bitmask of subgraphs to materialize.
enum DegkPieces : unsigned {
  kDegkHigh = 1u << 0,      ///< G_H
  kDegkLow = 1u << 1,       ///< G_L
  kDegkCross = 1u << 2,     ///< G_C
  kDegkLowCross = 1u << 3,  ///< G_L ∪ G_C (what MM-Degk / COLOR-Degk solve)
  kDegkAll = kDegkHigh | kDegkLow | kDegkCross | kDegkLowCross,
};

struct DegkDecomposition {
  vid_t k = 2;
  /// Per-vertex: 1 iff degree(v) > k (v ∈ V_H).
  std::vector<std::uint8_t> is_high;
  vid_t num_high = 0;
  CsrGraph g_high;       ///< valid iff kDegkHigh requested
  CsrGraph g_low;        ///< valid iff kDegkLow requested
  CsrGraph g_cross;      ///< valid iff kDegkCross requested
  CsrGraph g_low_cross;  ///< valid iff kDegkLowCross requested
  /// Wall-clock seconds spent decomposing (Figure 2 measurements).
  double decompose_seconds = 0.0;
};

DegkDecomposition decompose_degk(const CsrGraph& g, vid_t k = 2,
                                 unsigned pieces = kDegkHigh | kDegkLowCross);

}  // namespace sbg
