// GROW: a cheap locality-preserving k-way partitioner (multi-source BFS
// label growing). Stand-in for METIS/PMETIS in the Remark 1 ablation: the
// paper excludes PMETIS because partitioning costs more than the symmetry-
// breaking computations themselves; GROW is *much* cheaper than METIS and
// still loses that race, which makes the point a fortiori
// (bench_ablation_partitioner).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sbg {

struct GrowDecomposition {
  vid_t k = 0;
  /// Per-vertex partition label in [0, k).
  std::vector<vid_t> part;
  CsrGraph g_intra;
  CsrGraph g_cross;
  /// Number of cut (cross) undirected edges.
  eid_t cut_edges = 0;
  double decompose_seconds = 0.0;
};

/// Multi-source BFS growth from k random seeds; unreached vertices (in
/// disconnected inputs) fall back to hash-assigned labels.
GrowDecomposition decompose_grow(const CsrGraph& g, vid_t k,
                                 std::uint64_t seed = 42);

}  // namespace sbg
