#include "core/degk.hpp"

#include "graph/subgraph.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg {

DegkDecomposition decompose_degk(const CsrGraph& g, vid_t k, unsigned pieces) {
  SBG_SPAN("decompose.degk");
  Timer timer;
  DegkDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.is_high.assign(n, 0);
  parallel_for(n, [&](std::size_t v) {
    d.is_high[v] = g.degree(static_cast<vid_t>(v)) > k ? 1 : 0;
  });
  d.num_high = static_cast<vid_t>(
      parallel_count(n, [&](std::size_t v) { return d.is_high[v] != 0; }));

  const auto& high = d.is_high;
  if (pieces & kDegkHigh) {
    d.g_high =
        filter_edges(g, [&](vid_t u, vid_t v) { return high[u] && high[v]; });
  }
  if (pieces & kDegkLow) {
    d.g_low =
        filter_edges(g, [&](vid_t u, vid_t v) { return !high[u] && !high[v]; });
  }
  if (pieces & kDegkCross) {
    d.g_cross =
        filter_edges(g, [&](vid_t u, vid_t v) { return high[u] != high[v]; });
  }
  if (pieces & kDegkLowCross) {
    d.g_low_cross = filter_edges(
        g, [&](vid_t u, vid_t v) { return !(high[u] && high[v]); });
  }
  d.decompose_seconds = timer.seconds();
  return d;
}

}  // namespace sbg
