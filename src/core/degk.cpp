#include "core/degk.hpp"

#include "graph/subgraph.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg {

DegkDecomposition decompose_degk(const CsrGraph& g, vid_t k, unsigned pieces) {
  SBG_SPAN("decompose.degk");
  Timer timer;
  DegkDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.is_high.assign(n, 0);
  parallel_for(n, [&](std::size_t v) {
    d.is_high[v] = g.degree(static_cast<vid_t>(v)) > k ? 1 : 0;
  });
  d.num_high = static_cast<vid_t>(
      parallel_count(n, [&](std::size_t v) { return d.is_high[v] != 0; }));

  const auto& high = d.is_high;
  if (pieces != 0) {
    // Every requested piece is a union of the three fundamental arc classes
    // {high-high, low-low, cross}. Map each fundamental class to a dense
    // split slot (or drop it), run ONE fused k-way split, then assemble the
    // requested pieces from the slots. The common default — G_H plus
    // G_L ∪ G_C — fuses low-low and cross into a single slot, so the whole
    // decomposition is one 2-way split instead of two full filter sweeps.
    const bool fuse =
        (pieces & kDegkLowCross) && !(pieces & (kDegkLow | kDegkCross));
    constexpr std::uint8_t kDropSlot = 0xff;  // >= k, split drops the arc
    std::uint8_t slot_hh = kDropSlot, slot_ll = kDropSlot,
                 slot_cross = kDropSlot;
    unsigned k = 0;
    if (pieces & kDegkHigh) slot_hh = static_cast<std::uint8_t>(k++);
    if (fuse) {
      slot_ll = slot_cross = static_cast<std::uint8_t>(k++);
    } else {
      if (pieces & (kDegkLow | kDegkLowCross)) {
        slot_ll = static_cast<std::uint8_t>(k++);
      }
      if (pieces & (kDegkCross | kDegkLowCross)) {
        slot_cross = static_cast<std::uint8_t>(k++);
      }
    }
    std::vector<CsrGraph> parts = split_edges(
        g,
        [&](vid_t u, vid_t v) -> unsigned {
          if (high[u] && high[v]) return slot_hh;
          if (!high[u] && !high[v]) return slot_ll;
          return slot_cross;
        },
        k);
    if (pieces & kDegkHigh) d.g_high = std::move(parts[slot_hh]);
    if (pieces & kDegkLowCross) {
      // Fused: the slot already holds the union. Otherwise merge the two
      // edge-disjoint slots (byte-identical to filtering the union).
      d.g_low_cross = fuse ? std::move(parts[slot_ll])
                           : merge_edge_disjoint(parts[slot_ll],
                                                 parts[slot_cross]);
    }
    if (pieces & kDegkLow) d.g_low = std::move(parts[slot_ll]);
    if (pieces & kDegkCross) d.g_cross = std::move(parts[slot_cross]);
  }
  d.decompose_seconds = timer.seconds();
  return d;
}

}  // namespace sbg
