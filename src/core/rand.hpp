// RAND decomposition (paper Algorithm 2).
//
// Every vertex independently picks a uniform partition in {0..k-1}. The
// decomposition is the family of induced subgraphs G_i = G[V_i] plus the
// cross-edge graph G_{k+1}. Because every piece keeps the global vertex-id
// space, the union of all G_i is itself a single CSR (g_intra); algorithms
// that "solve the pieces in parallel" simply run once on g_intra — its
// components never span partitions, which is exactly the parallelism the
// paper exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sbg {

struct RandDecomposition {
  /// Number of partitions k (the paper's "size" parameter).
  vid_t k = 0;
  /// Per-vertex partition label in [0, k).
  std::vector<vid_t> part;
  /// Union of the induced subgraphs G_1..G_k (intra-partition edges).
  CsrGraph g_intra;
  /// G_{k+1}: the edge-induced subgraph of cross edges.
  CsrGraph g_cross;
  /// Wall-clock seconds spent decomposing (Figure 2 measurements).
  double decompose_seconds = 0.0;
};

/// Decompose with k partitions. Deterministic in (g, k, seed).
RandDecomposition decompose_rand(const CsrGraph& g, vid_t k,
                                 std::uint64_t seed = 42);

/// The paper's partition-count heuristic (Section III-B2): "use the
/// partition size k close to the average degree of the graph", with the
/// kron exception of Section III-C (k = 100 for very dense graphs).
vid_t rand_partition_heuristic(const CsrGraph& g);

}  // namespace sbg
