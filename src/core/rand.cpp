#include "core/rand.hpp"

#include <algorithm>
#include <cmath>

#include "graph/subgraph.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

RandDecomposition decompose_rand(const CsrGraph& g, vid_t k,
                                 std::uint64_t seed) {
  SBG_CHECK(k >= 1, "RAND needs k >= 1 partitions");
  SBG_SPAN("decompose.rand");
  Timer timer;
  RandDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.part.resize(n);

  const RandomStream rs(seed, /*stream=*/0x9a2d);
  parallel_for(n, [&](std::size_t v) {
    d.part[v] = static_cast<vid_t>(rs.below(v, k));
  });

  d.g_intra =
      filter_edges(g, [&](vid_t u, vid_t v) { return d.part[u] == d.part[v]; });
  d.g_cross =
      filter_edges(g, [&](vid_t u, vid_t v) { return d.part[u] != d.part[v]; });
  d.decompose_seconds = timer.seconds();
  SBG_HIST_RECORD("rand.cross_edges", d.g_cross.num_edges());
  SBG_GAUGE_SET("rand.k", d.k);
  return d;
}

vid_t rand_partition_heuristic(const CsrGraph& g) {
  const double avg = g.average_degree();
  if (avg > 50.0) return 100;  // kron-class graphs (Section III-C)
  return std::clamp<vid_t>(static_cast<vid_t>(std::lround(avg)), 2, 32);
}

}  // namespace sbg
