#include "core/rand.hpp"

#include <algorithm>
#include <cmath>

#include "graph/subgraph.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

RandDecomposition decompose_rand(const CsrGraph& g, vid_t k,
                                 std::uint64_t seed) {
  SBG_CHECK(k >= 1, "RAND needs k >= 1 partitions");
  SBG_SPAN("decompose.rand");
  Timer timer;
  RandDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.part.resize(n);

  const RandomStream rs(seed, /*stream=*/0x9a2d);
  parallel_for(n, [&](std::size_t v) {
    d.part[v] = static_cast<vid_t>(rs.below(v, k));
  });

  // One fused pass classifies each arc once and materializes both pieces.
  std::vector<CsrGraph> parts = split_edges(
      g, [&](vid_t u, vid_t v) { return d.part[u] == d.part[v] ? 0u : 1u; },
      /*k=*/2);
  d.g_intra = std::move(parts[0]);
  d.g_cross = std::move(parts[1]);
  d.decompose_seconds = timer.seconds();
  SBG_HIST_RECORD("rand.cross_edges", d.g_cross.num_edges());
  SBG_GAUGE_SET("rand.k", d.k);
  return d;
}

vid_t rand_partition_heuristic(const CsrGraph& g) {
  const double avg = g.average_degree();
  if (avg > 50.0) return 100;  // kron-class graphs (Section III-C)
  return std::clamp<vid_t>(static_cast<vid_t>(std::lround(avg)), 2, 32);
}

}  // namespace sbg
