// BRIDGE decomposition (paper Algorithm 1).
//
// Step 1: build a BFS tree (parent / level arrays).
// Step 2: for every non-tree edge (w, v), walk w and v up the tree to their
// least common ancestor, marking every tree edge traversed. Tree edges left
// unmarked are exactly the bridges of G; removing them splits G into its
// 2-edge-connected components.
//
// Two walk strategies:
//  * kNaiveWalk    — the paper's algorithm verbatim: every walk re-traverses
//    already-marked edges. Simple, but walks pile up near the tree root
//    (this is why the paper finds BRIDGE the slowest decomposition).
//  * kShortcutWalk — each vertex keeps a path-compressed "skip" pointer to
//    the highest ancestor whose connecting path is fully marked; walks jump
//    over marked regions, giving near-linear total work.
// Both are validated against a sequential Tarjan-style reference in tests;
// bench_ablation_bridge_impl compares them.
#pragma once

#include <utility>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/csr.hpp"

namespace sbg {

enum class BridgeAlgo { kNaiveWalk, kShortcutWalk };

struct BridgeDecomposition {
  /// Bridge edges as (child, parent) pairs in BFS-tree orientation.
  std::vector<std::pair<vid_t, vid_t>> bridges;
  /// Per-vertex: 1 iff the vertex is an endpoint of some bridge
  /// ("bridge vertices" in the paper's MM-Bridge).
  std::vector<std::uint8_t> is_bridge_vertex;
  /// G - B: the input graph with bridge edges removed. Its connected
  /// components are the 2-edge-connected components G_1, G_2, ... of G.
  CsrGraph g_components;
  /// B as a sub-CSR in the original vertex space (the complement piece of
  /// the same one-pass split that builds g_components). MM-Bridge's phase-2
  /// matching runs directly on this instead of rebuilding it from the edge
  /// list.
  CsrGraph g_bridges;
  /// Component labels of g_components (isolated vertices included).
  Components components;
  /// Wall-clock seconds spent decomposing (Figure 2 measurements).
  double decompose_seconds = 0.0;
};

/// Run the BRIDGE decomposition. Handles disconnected inputs by growing a
/// BFS forest.
BridgeDecomposition decompose_bridge(const CsrGraph& g,
                                     BridgeAlgo algo = BridgeAlgo::kNaiveWalk);

/// Just the bridge edges (skips materializing G - B), (child, parent) pairs.
std::vector<std::pair<vid_t, vid_t>> find_bridges(
    const CsrGraph& g, BridgeAlgo algo = BridgeAlgo::kNaiveWalk);

/// Sequential iterative Tarjan low-link bridge finder — the test oracle.
std::vector<std::pair<vid_t, vid_t>> bridges_reference(const CsrGraph& g);

}  // namespace sbg
