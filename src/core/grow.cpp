#include "core/grow.hpp"

#include <omp.h>

#include "graph/subgraph.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

GrowDecomposition decompose_grow(const CsrGraph& g, vid_t k,
                                 std::uint64_t seed) {
  SBG_CHECK(k >= 1, "GROW needs k >= 1 partitions");
  Timer timer;
  GrowDecomposition d;
  d.k = k;
  const vid_t n = g.num_vertices();
  d.part.assign(n, kNoVertex);
  if (n == 0) return d;

  // Seeds: k distinct-ish random vertices (collisions just merge regions).
  const RandomStream rs(seed, /*stream=*/0x6b0b);
  std::vector<vid_t> frontier;
  for (vid_t i = 0; i < k; ++i) {
    const vid_t s = static_cast<vid_t>(rs.below(i, n));
    if (d.part[s] == kNoVertex) {
      d.part[s] = i;
      frontier.push_back(s);
    }
  }

  // Multi-source BFS: each round, assigned frontier vertices claim their
  // unassigned neighbors.
  std::vector<std::vector<vid_t>> next_local;
  while (!frontier.empty()) {
#pragma omp parallel
    {
#pragma omp single
      next_local.assign(static_cast<std::size_t>(omp_get_num_threads()), {});
      auto& local = next_local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
           ++i) {
        const vid_t u = frontier[static_cast<std::size_t>(i)];
        const vid_t lbl = d.part[u];
        for (const vid_t v : g.neighbors(u)) {
          if (atomic_read(&d.part[v]) == kNoVertex &&
              claim(&d.part[v], kNoVertex, lbl)) {
            local.push_back(v);
          }
        }
      }
    }
    frontier.clear();
    for (auto& chunk : next_local) {
      frontier.insert(frontier.end(), chunk.begin(), chunk.end());
    }
  }

  // Disconnected leftovers: hash-assign.
  parallel_for(n, [&](std::size_t v) {
    if (d.part[v] == kNoVertex) {
      d.part[v] = static_cast<vid_t>(rs.below(n + v, k));
    }
  });

  std::vector<CsrGraph> parts = split_edges(
      g, [&](vid_t u, vid_t v) { return d.part[u] == d.part[v] ? 0u : 1u; },
      /*k=*/2);
  d.g_intra = std::move(parts[0]);
  d.g_cross = std::move(parts[1]);
  d.cut_edges = d.g_cross.num_edges();
  d.decompose_seconds = timer.seconds();
  return d;
}

}  // namespace sbg
