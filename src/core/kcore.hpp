// KCORE decomposition: bucketed k-core peeling.
//
// The k-core of G is the maximal subgraph whose vertices all have degree
// >= k inside it; core(v) is the largest k whose k-core contains v, and the
// degeneracy of G is max_v core(v). Peeling computes every core number in
// one sweep: repeatedly remove all vertices of degree <= k, bumping k when
// the frontier dries up. We parallelize the classic algorithm the way the
// recent parallel k-core literature does (Liu & Dong, arXiv:2502.08042):
// peel a whole frontier per round with atomic degree decrements, a vertex
// entering the next frontier exactly when its remaining degree first
// crosses the threshold.
//
// Two consumers:
//  * a fourth decomposition alongside BRIDGE/RAND/GROW/DEGk — split by a
//    core-number threshold instead of a raw degree threshold. Cores are
//    robust to hubs: a star center has huge degree but core 1, so KCORE
//    keeps it in the low piece where DEGk would promote it.
//  * the dynamic-graph repair scheduler (src/dyn) — the peeling order is a
//    degeneracy order, and repairing along it resolves conflicts toward
//    sparse vertices first.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace sbg {

/// Bitmask of subgraphs to materialize (mirrors DegkPieces).
enum KcorePieces : unsigned {
  kKcoreHigh = 1u << 0,   ///< G[{core > k}]
  kKcoreLow = 1u << 1,    ///< G[{core <= k}]
  kKcoreCross = 1u << 2,  ///< edges with one endpoint on each side
  kKcoreAll = kKcoreHigh | kKcoreLow | kKcoreCross,
};

struct KcoreDecomposition {
  /// Core-number threshold for the high/low split.
  vid_t k = 2;
  /// Per-vertex core number.
  std::vector<vid_t> core;
  /// max_v core[v] (0 for the empty graph).
  vid_t degeneracy = 0;
  /// Peeling order: a permutation of the vertices, core-nondecreasing;
  /// every vertex has < degeneracy + 1 neighbors *later* in the order
  /// (a degeneracy ordering). Ties within a round are by ascending id, so
  /// the order is deterministic at any thread count.
  std::vector<vid_t> order;
  /// Per-vertex: 1 iff core[v] > k.
  std::vector<std::uint8_t> is_high;
  vid_t num_high = 0;
  CsrGraph g_high;   ///< valid iff kKcoreHigh requested
  CsrGraph g_low;    ///< valid iff kKcoreLow requested
  CsrGraph g_cross;  ///< valid iff kKcoreCross requested
  /// Wall-clock seconds spent decomposing.
  double decompose_seconds = 0.0;
};

KcoreDecomposition decompose_kcore(const CsrGraph& g, vid_t k = 2,
                                   unsigned pieces = kKcoreAll);

/// Sequential textbook peeling (Matula–Beck bin sort, O(n + m)) — the
/// differential reference for the parallel decomposition, same role as
/// bridges_reference() for BRIDGE.
std::vector<vid_t> kcore_reference(const CsrGraph& g);

}  // namespace sbg
