#include "core/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common.hpp"

namespace sbg::env {

std::uint64_t bytes(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::string s(raw);
  std::uint64_t mult = 1;
  switch (s.back()) {
    case 'k': case 'K': mult = 1ull << 10; s.pop_back(); break;
    case 'm': case 'M': mult = 1ull << 20; s.pop_back(); break;
    case 'g': case 'G': mult = 1ull << 30; s.pop_back(); break;
    default: break;
  }
  // strtoull accepts a leading '-' and wraps it modulo 2^64; reject it
  // before parsing so "-1G" cannot become a near-infinite budget.
  if (s.empty() || s.front() == '-' || s.front() == '+') {
    throw InputError(std::string(name) +
                     ": expected bytes (optional K/M/G suffix), got '" + raw +
                     "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    throw InputError(std::string(name) +
                     ": expected bytes (optional K/M/G suffix), got '" + raw +
                     "'");
  }
  if (mult > 1 && v > std::numeric_limits<std::uint64_t>::max() / mult) {
    throw InputError(std::string(name) +
                     ": byte count overflows 64 bits, got '" + raw + "'");
  }
  return std::uint64_t(v) * mult;
}

long get_long(const char* name, long fallback, long min_v, long max_v) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || v < min_v || v > max_v) {
    throw InputError(std::string(name) + ": expected integer in [" +
                     std::to_string(min_v) + ", " + std::to_string(max_v) +
                     "], got '" + raw + "'");
  }
  return v;
}

double get_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw, &end);
  if (errno != 0 || end == raw || *end != '\0' || !(v >= 0)) {
    throw InputError(std::string(name) +
                     ": expected non-negative number, got '" + raw + "'");
  }
  return v;
}

long long_or_warn(const char* name, long fallback, long min_v, long max_v) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || v < min_v || v > max_v) {
    std::fprintf(stderr,
                 "warning: %s ignored: expected integer in [%ld, %ld], "
                 "got '%s'\n",
                 name, min_v, max_v, raw);
    return fallback;
  }
  return v;
}

}  // namespace sbg::env
