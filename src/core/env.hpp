// Shared environment-variable parsing.
//
// Every SBG_* knob used to grow its own ad-hoc parser; two of the byte-size
// ones (serve mem cap, ooc budget) were copy-pasted and both multiplied
// suffixes unchecked, so "99999999999999999G" silently wrapped to a tiny
// budget. This is the one implementation, with two severities:
//
//   * strict (bytes / get_long / get_double): a malformed value throws
//     InputError naming the variable — these knobs gate resource budgets
//     and server limits, where a silently-misread value is worse than a
//     refused start;
//   * soft (long_or_warn): a malformed value prints one "warning: <NAME>
//     ignored: ..." line (matching the SBG_OBS_EXPORT style) and falls back
//     — these knobs only tune behaviour (sampler period, thread count), and
//     observability must never crash the workload it observes.
#pragma once

#include <cstdint>

namespace sbg::env {

/// Byte count with optional K/M/G suffix (powers of 1024), e.g. "512M".
/// Unset/empty returns `fallback`. Throws InputError on garbage, negative
/// values, or any value whose suffix multiplication would overflow 64 bits.
std::uint64_t bytes(const char* name, std::uint64_t fallback);

/// Integer in [min_v, max_v]; unset/empty returns `fallback`, anything else
/// malformed or out of range throws InputError.
long get_long(const char* name, long fallback, long min_v, long max_v);

/// Non-negative floating-point value; unset/empty returns `fallback`,
/// malformed or negative throws InputError.
double get_double(const char* name, double fallback);

/// Soft integer knob: unset/empty returns `fallback`; garbage or a value
/// outside [min_v, max_v] emits one "warning: <NAME> ignored: ..." line on
/// stderr and returns `fallback` instead of throwing.
long long_or_warn(const char* name, long fallback, long min_v, long max_v);

}  // namespace sbg::env
