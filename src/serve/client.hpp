// Minimal blocking HTTP/1.1 client — just enough to drive sbg_serve from
// tests, the serve fuzz family, and the serve benches without curl. One
// request per connection, mirroring the server's Connection: close policy.
#pragma once

#include <string>

namespace sbg::serve {

struct ClientResponse {
  int status = 0;
  std::string body;
};

/// Parse a raw HTTP/1.1 response (status line + headers + body) into `out`.
/// Strict about the status line: the three-digit code must sit on the first
/// line, before its CRLF — a truncated "HTTP/1.1 20" or a line with no space
/// is a structured parse error, never a number scraped from a header further
/// down. Returns false with *error naming what was malformed.
bool parse_http_response(const std::string& raw, ClientResponse* out,
                         std::string* error = nullptr);

/// Connect to 127.0.0.1:`port`, send one request, read the full response.
/// Returns false with *error on connect/send/parse failure (a refused
/// connection after drain, a 429 slammed-shut socket, ...). `timeout_s`
/// bounds each recv.
bool http_request(int port, const std::string& method,
                  const std::string& target, const std::string& body,
                  ClientResponse* out, std::string* error = nullptr,
                  double timeout_s = 30.0);

/// Send raw bytes verbatim and collect whatever comes back until the server
/// closes — the fuzzer's door for malformed request lines, oversized
/// headers, and truncated bodies that http_request() could never produce.
bool http_raw(int port, const std::string& bytes, std::string* response_bytes,
              std::string* error = nullptr, double timeout_s = 30.0);

}  // namespace sbg::serve
