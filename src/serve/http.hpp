// Minimal HTTP/1.1 plumbing for the sbg_serve daemon — no external deps.
//
// Scope is deliberately small: one request per connection, Connection:
// close on every response, Content-Length bodies only (chunked transfer
// gets 501), and hard caps on header and body size so an adversarial
// client cannot balloon memory. That is all the service API (JSON in, JSON
// or Prometheus text out) needs, and it keeps every byte that crosses the
// socket inspectable by the serve fuzz family.
//
// The split is protocol-only: sockets in, a parsed HttpRequest out, an
// HttpResponse serialized back. Routing and semantics live in server.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sbg::serve {

struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 1 * 1024 * 1024;
  /// recv timeout while reading one request; <= 0 disables.
  double read_timeout_s = 10.0;
};

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< path only; the query string (if any) is dropped
  std::string body;
  /// Header names lowercased; last value wins on duplicates.
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits
/// ("Gateway Timeout" for 504, ...); "Unknown" otherwise.
const char* status_text(int status);

enum class ParseStatus {
  kOk,
  kClosed,       ///< peer closed before a full request arrived
  kTimeout,      ///< read_timeout_s elapsed mid-request
  kTooLarge,     ///< headers or body over the limits -> 431/413
  kUnsupported,  ///< chunked transfer-encoding -> 501
  kMalformed,    ///< anything else -> 400
};

/// Read and parse one request from connected socket `fd`. Blocking, with
/// SO_RCVTIMEO set from limits.read_timeout_s. On kOk fills *out; every
/// other status leaves *out unspecified and fills *error (if non-null) with
/// a one-line reason.
ParseStatus read_http_request(int fd, const HttpLimits& limits,
                              HttpRequest* out, std::string* error = nullptr);

/// Serialize and send `res` on `fd` (HTTP/1.1, Content-Length, Connection:
/// close). Returns false when the peer went away mid-write — the caller
/// just closes the fd either way.
bool write_http_response(int fd, const HttpResponse& res);

/// Open a listening TCP socket on 127.0.0.1:`port` (port 0 picks an
/// ephemeral port). Returns the fd (>= 0) and stores the bound port in
/// *bound_port; returns -1 with *error filled on failure.
int open_listener(int port, int* bound_port, std::string* error);

/// Close `fd` without risking an RST racing the response: drain any unread
/// request bytes, shut down the write side, then read until the peer
/// closes (bounded by `timeout_s`). Needed whenever we answer before
/// consuming the full request (429 at admission, 413 on oversized bodies)
/// — a plain close() with buffered input makes TCP reset the connection,
/// which can destroy the in-flight response before the client reads it.
void drain_and_close(int fd, double timeout_s = 0.25);

/// {"error":"<escaped message>"} — the uniform error body.
std::string error_body(const std::string& message);

}  // namespace sbg::serve
