#include "serve/client.hpp"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace sbg::serve {

namespace {

int connect_loopback(int port, double timeout_s, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (timeout_s > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_s);
    tv.tv_usec =
        static_cast<suseconds_t>((timeout_s - double(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error != nullptr) {
      *error = std::string("connect: ") + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes, std::string* error) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read until the peer closes (the server always does) or recv times out.
bool recv_until_close(int fd, std::string* out, std::string* error) {
  for (;;) {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    out->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

bool parse_http_response(const std::string& raw, ClientResponse* out,
                         std::string* error) {
  // Status line: HTTP/1.1 NNN Reason\r\n — confine every check to the first
  // line. The old code ran raw.find(' ') over the whole response, so a
  // truncated status line ("HTTP/1.1 20") could borrow a space and digits
  // from a header below it and report a fabricated status code.
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    if (error != nullptr) *error = "response missing status line terminator";
    return false;
  }
  const std::string line = raw.substr(0, line_end);
  const std::size_t sp = line.find(' ');
  if (line.rfind("HTTP/1.", 0) != 0 || sp == std::string::npos ||
      sp + 4 > line.size()) {
    if (error != nullptr) *error = "malformed response status line";
    return false;
  }
  const std::string code = line.substr(sp + 1, 3);
  if (code.find_first_not_of("0123456789") != std::string::npos) {
    if (error != nullptr) *error = "malformed response status code";
    return false;
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (error != nullptr) *error = "response missing header terminator";
    return false;
  }
  out->status = std::stoi(code);
  out->body = raw.substr(header_end + 4);
  return true;
}

bool http_request(int port, const std::string& method,
                  const std::string& target, const std::string& body,
                  ClientResponse* out, std::string* error, double timeout_s) {
  const int fd = connect_loopback(port, timeout_s, error);
  if (fd < 0) return false;

  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: 127.0.0.1\r\n";
  if (!body.empty()) {
    req += "Content-Type: application/json\r\n";
  }
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "Connection: close\r\n\r\n";
  req += body;
  if (!send_all(fd, req, error)) {
    ::close(fd);
    return false;
  }

  std::string raw;
  const bool ok = recv_until_close(fd, &raw, error);
  ::close(fd);
  if (!ok) return false;
  return parse_http_response(raw, out, error);
}

bool http_raw(int port, const std::string& bytes, std::string* response_bytes,
              std::string* error, double timeout_s) {
  const int fd = connect_loopback(port, timeout_s, error);
  if (fd < 0) return false;
  if (!send_all(fd, bytes, error)) {
    ::close(fd);
    return false;
  }
  const bool ok = recv_until_close(fd, response_bytes, error);
  ::close(fd);
  return ok;
}

}  // namespace sbg::serve
