#include "serve/http.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "obs/report.hpp"

namespace sbg::serve {

namespace {

bool set_recv_timeout(int fd, double seconds) {
  if (seconds <= 0) return true;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - double(tv.tv_sec)) * 1e6);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

/// ASCII lowercase in place (header names are case-insensitive).
void lower(std::string& s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

/// Strip leading/trailing HTTP optional whitespace (space / htab).
std::string trim_ows(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

ParseStatus fail(ParseStatus st, std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return st;
}

}  // namespace

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

ParseStatus read_http_request(int fd, const HttpLimits& limits,
                              HttpRequest* out, std::string* error) {
  set_recv_timeout(fd, limits.read_timeout_s);

  // Read until the blank line that ends the header block. Whatever arrives
  // past it is the start of the body.
  std::string buf;
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    if (buf.size() > limits.max_header_bytes) {
      return fail(ParseStatus::kTooLarge, error, "header block too large");
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
    if (got == 0) return fail(ParseStatus::kClosed, error, "peer closed");
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return fail(ParseStatus::kTimeout, error, "read timeout");
      }
      if (errno == EINTR) continue;
      return fail(ParseStatus::kClosed, error,
                  std::string("recv: ") + std::strerror(errno));
    }
    buf.append(chunk, static_cast<std::size_t>(got));
    header_end = buf.find("\r\n\r\n");
  }
  if (header_end > limits.max_header_bytes) {
    return fail(ParseStatus::kTooLarge, error, "header block too large");
  }

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return fail(ParseStatus::kMalformed, error, "bad request line");
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (req.method.empty() || req.target.empty() || req.target[0] != '/' ||
      version.rfind("HTTP/1.", 0) != 0) {
    return fail(ParseStatus::kMalformed, error, "bad request line");
  }
  // The service routes on the path alone; drop any query string.
  if (const std::size_t q = req.target.find('?'); q != std::string::npos) {
    req.target.resize(q);
  }

  // Header fields.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string field = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail(ParseStatus::kMalformed, error, "bad header field");
    }
    std::string name = field.substr(0, colon);
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return fail(ParseStatus::kMalformed, error, "whitespace in header name");
    }
    lower(name);
    req.headers[name] = trim_ows(field.substr(colon + 1));
  }

  if (req.headers.count("transfer-encoding") != 0) {
    return fail(ParseStatus::kUnsupported, error,
                "transfer-encoding not supported");
  }

  // Body: exactly Content-Length bytes (0 when absent).
  std::size_t content_length = 0;
  if (const auto it = req.headers.find("content-length");
      it != req.headers.end()) {
    const std::string& v = it->second;
    if (v.empty() || v.size() > 12 ||
        v.find_first_not_of("0123456789") != std::string::npos) {
      return fail(ParseStatus::kMalformed, error, "bad content-length");
    }
    content_length = static_cast<std::size_t>(std::stoull(v));
  }
  if (content_length > limits.max_body_bytes) {
    return fail(ParseStatus::kTooLarge, error, "body over limit");
  }

  req.body = buf.substr(header_end + 4);
  if (req.body.size() > content_length) {
    // Pipelined extra bytes: we serve one request per connection, drop them.
    req.body.resize(content_length);
  }
  while (req.body.size() < content_length) {
    char chunk[4096];
    const std::size_t want =
        std::min(sizeof chunk, content_length - req.body.size());
    const ssize_t got = ::recv(fd, chunk, want, 0);
    if (got == 0) return fail(ParseStatus::kClosed, error, "body truncated");
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return fail(ParseStatus::kTimeout, error, "read timeout in body");
      }
      if (errno == EINTR) continue;
      return fail(ParseStatus::kClosed, error,
                  std::string("recv: ") + std::strerror(errno));
    }
    req.body.append(chunk, static_cast<std::size_t>(got));
  }

  *out = std::move(req);
  return ParseStatus::kOk;
}

bool write_http_response(int fd, const HttpResponse& res) {
  std::string out;
  out.reserve(res.body.size() + 160);
  out += "HTTP/1.1 " + std::to_string(res.status) + " " +
         status_text(res.status) + "\r\n";
  out += "Content-Type: " + res.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += res.body;

  std::size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a client that hung up must surface as EPIPE, not kill
    // the daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int open_listener(int port, int* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

void drain_and_close(int fd, double timeout_s) {
  ::shutdown(fd, SHUT_WR);  // FIN after the response; reads stay open
  set_recv_timeout(fd, timeout_s);
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF, timeout, or error: safe to close now
  }
  ::close(fd);
}

std::string error_body(const std::string& message) {
  std::string out = "{\"error\":";
  obs::append_json_string(out, message);
  out += "}";
  return out;
}

}  // namespace sbg::serve
