#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "graph/dataset.hpp"
#include "ingest/ingest.hpp"
#include "obs/obs.hpp"

namespace sbg::serve {

namespace {

bool is_dataset_name(const std::string& s) {
  for (const auto& name : dataset_names()) {
    if (name == s) return true;
  }
  return false;
}

}  // namespace

GraphRegistry::GraphRegistry(RegistryOptions opt) : opt_(opt) {}

std::shared_ptr<const CsrGraph> GraphRegistry::acquire(const std::string& name,
                                                       std::string* error) {
  if (std::shared_ptr<const CsrGraph> g = get(name)) return g;
  SBG_COUNTER_ADD("serve.registry_misses", 1);

  // Load OUTSIDE the lock: a Table II parse can take seconds and must not
  // serialize unrelated requests behind it.
  std::shared_ptr<const CsrGraph> graph;
  std::string source;
  bool from_cache = false;
  try {
    if (is_dataset_name(name)) {
      graph = std::make_shared<const CsrGraph>(
          make_dataset(name, opt_.dataset_scale, opt_.dataset_seed));
      source = "dataset:" + name;
    } else {
      ingest::LoadReport rep;
      graph = ingest::load_shared(name, {}, &rep);
      source = "file:" + name;
      from_cache = rep.cache_hit;
    }
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = "cannot load graph '" + name + "': " + e.what();
    }
    SBG_COUNTER_ADD("serve.registry_load_failures", 1);
    return nullptr;
  }
  SBG_COUNTER_ADD("serve.registry_loads", 1);

  std::lock_guard<std::mutex> lock(mu_);
  // A racing request may have inserted while we parsed; keep theirs.
  if (const auto it = entries_.find(name); it != entries_.end()) {
    it->second.last_use = ++tick_;
    return it->second.graph;
  }
  Entry e;
  e.graph = graph;
  e.info.name = name;
  e.info.vertices = graph->num_vertices();
  e.info.edges = graph->num_edges();
  e.info.bytes = ingest::resident_bytes(*graph);
  e.info.source = std::move(source);
  e.info.loaded_from_cache = from_cache;
  e.last_use = ++tick_;
  total_bytes_ += e.info.bytes;
  entries_.emplace(name, std::move(e));
  evict_over_cap_locked();
  refresh_gauges_locked();
  return graph;
}

void GraphRegistry::put(const std::string& name,
                        std::shared_ptr<const CsrGraph> graph,
                        std::string source, bool loaded_from_cache) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    total_bytes_ -= it->second.info.bytes;
    entries_.erase(it);
  }
  Entry e;
  e.info.name = name;
  e.info.vertices = graph->num_vertices();
  e.info.edges = graph->num_edges();
  e.info.bytes = ingest::resident_bytes(*graph);
  e.info.source = std::move(source);
  e.info.loaded_from_cache = loaded_from_cache;
  e.graph = std::move(graph);
  e.last_use = ++tick_;
  total_bytes_ += e.info.bytes;
  entries_.emplace(name, std::move(e));
  SBG_COUNTER_ADD("serve.registry_loads", 1);
  evict_over_cap_locked();
  refresh_gauges_locked();
}

std::shared_ptr<const CsrGraph> GraphRegistry::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  it->second.last_use = ++tick_;
  ++it->second.info.hits;
  SBG_COUNTER_ADD("serve.registry_hits", 1);
  return it->second.graph;
}

bool GraphRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  total_bytes_ -= it->second.info.bytes;
  entries_.erase(it);
  refresh_gauges_locked();
  return true;
}

std::vector<RegistryEntryInfo> GraphRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RegistryEntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(e.info);
  std::sort(out.begin(), out.end(),
            [](const RegistryEntryInfo& a, const RegistryEntryInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::uint64_t GraphRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void GraphRegistry::evict_over_cap_locked() {
  if (opt_.mem_cap_bytes == 0) return;
  while (total_bytes_ > opt_.mem_cap_bytes && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    total_bytes_ -= victim->second.info.bytes;
    entries_.erase(victim);
    SBG_COUNTER_ADD("serve.registry_evictions", 1);
  }
}

void GraphRegistry::refresh_gauges_locked() const {
  SBG_GAUGE_SET("serve.registry_entries", static_cast<double>(entries_.size()));
  SBG_GAUGE_SET("serve.registry_resident_bytes",
                static_cast<double>(total_bytes_));
}

}  // namespace sbg::serve
