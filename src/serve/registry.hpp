// GraphRegistry — hot CSR graphs kept resident across service requests.
//
// Every sbg run before the daemon paid full ingest (or at best a .sbgc
// cache read) per process. The registry is the serving-layer complement to
// that on-disk cache: the FIRST request for a graph pays ingest::load (which
// itself probes/refreshes the .sbgc entry), and every later request gets the
// same shared_ptr<const CsrGraph> back in a map lookup. Jobs hold the graph
// by shared_ptr, so eviction never invalidates an in-flight solve — the
// memory is reclaimed when the last job referencing it finishes.
//
// Eviction is LRU under an explicit byte budget (SBG_SERVE_MEM_CAP): each
// entry is charged its CSR footprint (ingest::resident_bytes), and inserts
// that push the total over the cap evict least-recently-used entries first.
// The newest entry always stays, even alone over the cap — rejecting the
// graph the caller is actively asking for would make the cap a DoS on
// single-large-graph workloads.
//
// Observability: counters serve.registry_{hits,misses,loads,evictions},
// gauges serve.registry_{entries,resident_bytes} — all visible in
// /metrics, which is how the acceptance criterion "second identical request
// re-uses the resident graph" is checked from outside.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"

namespace sbg::serve {

struct RegistryOptions {
  /// Byte budget for resident CSRs; 0 = unlimited.
  std::uint64_t mem_cap_bytes = 0;
  /// Scale/seed for Table II dataset names generated on first request.
  double dataset_scale = 1.0 / 32.0;
  std::uint64_t dataset_seed = 42;
};

/// One registry row, as reported by GET /v1/graphs.
struct RegistryEntryInfo {
  std::string name;
  vid_t vertices = 0;
  eid_t edges = 0;
  std::uint64_t bytes = 0;    ///< charged CSR footprint
  std::uint64_t hits = 0;     ///< acquire() hits since load
  std::string source;         ///< "dataset:<name>", "file:<path>", "posted"
  bool loaded_from_cache = false;  ///< .sbgc cache served the load
};

class GraphRegistry {
 public:
  explicit GraphRegistry(RegistryOptions opt = {});

  /// Get-or-load: a resident `name` comes straight back (LRU bumped,
  /// serve.registry.hits). A miss resolves `name` as a Table II dataset
  /// name (generated at the registry's scale/seed) or a graph file path
  /// (ingest::load, so the .sbgc cache applies), inserts the result, and
  /// evicts LRU entries over the cap. Returns nullptr with *error filled
  /// when the name resolves to nothing loadable. Thread-safe; concurrent
  /// misses on one name may both load, the first insert wins and both
  /// callers share it.
  std::shared_ptr<const CsrGraph> acquire(const std::string& name,
                                          std::string* error);

  /// Insert an already-built graph under `name` (POST /v1/graphs with an
  /// inline source, tests). Replaces any previous entry of that name.
  void put(const std::string& name, std::shared_ptr<const CsrGraph> graph,
           std::string source, bool loaded_from_cache = false);

  /// Lookup without loading; nullptr on miss. Counts hits like acquire.
  std::shared_ptr<const CsrGraph> get(const std::string& name);

  /// Drop `name`; false when absent. In-flight holders keep their refs.
  bool remove(const std::string& name);

  std::vector<RegistryEntryInfo> list() const;
  std::uint64_t resident_bytes() const;
  std::uint64_t mem_cap_bytes() const { return opt_.mem_cap_bytes; }
  std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const CsrGraph> graph;
    RegistryEntryInfo info;
    std::uint64_t last_use = 0;  ///< LRU tick
  };

  /// Evict LRU entries until under the cap (keeps the most recent entry).
  /// Caller holds mu_.
  void evict_over_cap_locked();
  void refresh_gauges_locked() const;

  RegistryOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace sbg::serve
