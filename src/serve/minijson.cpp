#include "serve/minijson.hpp"

#include <cmath>
#include <cstdlib>

namespace sbg::serve {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback,
                                  bool* type_error) const {
  const JsonValue* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    if (type_error != nullptr) *type_error = true;
    return fallback;
  }
  return v->as_string();
}

double JsonValue::get_number(const std::string& key, double fallback,
                             bool* type_error) const {
  const JsonValue* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    if (type_error != nullptr) *type_error = true;
    return fallback;
  }
  return v->as_number();
}

bool JsonValue::get_bool(const std::string& key, bool fallback,
                         bool* type_error) const {
  const JsonValue* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    if (type_error != nullptr) *type_error = true;
    return fallback;
  }
  return v->as_bool();
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& s, int max_depth) : s_(s), max_depth_(max_depth) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value(0);
    if (!v) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    ws();
    if (i_ != s_.size()) {
      if (error != nullptr) *error = "trailing bytes after document";
      return std::nullopt;
    }
    return v;
  }

 private:
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at byte " + std::to_string(i_);
    }
    return false;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i_) {
      if (peek() != *p) return fail("bad literal");
    }
    return true;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > max_depth_) {
      fail("nesting too deep");
      return std::nullopt;
    }
    ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        std::string s;
        if (!string(s)) return std::nullopt;
        return JsonValue::make_string(std::move(s));
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        return JsonValue::make_bool(true);
      case 'f':
        if (!literal("false")) return std::nullopt;
        return JsonValue::make_bool(false);
      case 'n':
        if (!literal("null")) return std::nullopt;
        return JsonValue::make_null();
      default: return number();
    }
  }

  std::optional<JsonValue> object(int depth) {
    ++i_;  // '{'
    std::map<std::string, JsonValue> members;
    ws();
    if (peek() == '}') {
      ++i_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      ws();
      std::string key;
      if (!string(key)) return std::nullopt;
      ws();
      if (peek() != ':') {
        fail("expected ':'");
        return std::nullopt;
      }
      ++i_;
      std::optional<JsonValue> v = value(depth + 1);
      if (!v) return std::nullopt;
      members.insert_or_assign(std::move(key), std::move(*v));
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == '}') {
        ++i_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array(int depth) {
    ++i_;  // '['
    std::vector<JsonValue> items;
    ws();
    if (peek() == ']') {
      ++i_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      std::optional<JsonValue> v = value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == ']') {
        ++i_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return fail("expected string");
    ++i_;
    out.clear();
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_++]);
      if (c == '"') return true;
      if (c < 0x20) return fail("raw control byte in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (i_ >= s_.size()) return fail("truncated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned v = 0;
          if (!hex4(v)) return false;
          if (v >= 0xd800 && v <= 0xdfff) {
            // Surrogate pairs are beyond what any sbg client sends; reject
            // rather than emit broken UTF-8.
            return fail("surrogate escapes unsupported");
          }
          // Encode the code point as UTF-8.
          if (v < 0x80) {
            out += static_cast<char>(v);
          } else if (v < 0x800) {
            out += static_cast<char>(0xc0 | (v >> 6));
            out += static_cast<char>(0x80 | (v & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (v >> 12));
            out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (v & 0x3f));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool hex4(unsigned& out) {
    out = 0;
    for (int d = 0; d < 4; ++d) {
      const char h = peek();
      ++i_;
      out <<= 4;
      if (h >= '0' && h <= '9') out |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') out |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') out |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  std::optional<JsonValue> number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected value");
      return std::nullopt;
    }
    // JSON forbids leading zeros ("01"); accept the grammar strictly so the
    // fuzzer's malformed inputs reliably get a 400, not a lenient parse.
    if (peek() == '0') {
      ++i_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (peek() == '.') {
      ++i_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits required after '.'");
        return std::nullopt;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits required in exponent");
        return std::nullopt;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    const std::string tok = s_.substr(start, i_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      fail("number out of range");
      return std::nullopt;
    }
    return JsonValue::make_number(d);
  }

  const std::string& s_;
  const int max_depth_;
  std::size_t i_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text, int max_depth,
                                    std::string* error) {
  return Parser(text, max_depth).parse(error);
}

}  // namespace sbg::serve
