#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "check/solvers.hpp"
#include "common.hpp"
#include "core/env.hpp"
#include "graph/dataset.hpp"
#include "ingest/ingest.hpp"
#include "obs/export/prom.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "parallel/thread_env.hpp"
#include "sched/sched.hpp"
#include "serve/minijson.hpp"
#include "tune/tune.hpp"

namespace sbg::serve {

namespace {

// ----------------------------------------------------- job decoding -------

bool parse_problem(const std::string& s, sched::Problem* out) {
  if (s == "mm") { *out = sched::Problem::kMM; return true; }
  if (s == "color") { *out = sched::Problem::kColor; return true; }
  if (s == "mis") { *out = sched::Problem::kMis; return true; }
  return false;
}

/// Whether `variant` names a registered solver for `problem` (or "auto").
bool variant_known(sched::Problem problem, const std::string& variant) {
  if (variant == sched::kAutoVariant) return true;
  switch (problem) {
    case sched::Problem::kMM:
      for (const auto& v : check::matching_variants()) {
        if (v.name == variant) return true;
      }
      return false;
    case sched::Problem::kColor:
      for (const auto& v : check::coloring_variants()) {
        if (v.name == variant) return true;
      }
      return false;
    case sched::Problem::kMis:
      for (const auto& v : check::mis_variants()) {
        if (v.name == variant) return true;
      }
      return false;
  }
  return false;
}

const char* status_word(sched::JobStatus s) {
  switch (s) {
    case sched::JobStatus::kOk: return "ok";
    case sched::JobStatus::kFailed: return "failed";
    case sched::JobStatus::kCancelled: return "cancelled";
  }
  return "failed";
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const HttpResponse kOverloadResponse{
    429, "application/json",
    "{\"error\":\"server overloaded: admission queue full\"}"};

}  // namespace

ServerOptions options_from_env() {
  ServerOptions o;
  o.port = int(env::get_long("SBG_SERVE_PORT", o.port, 0, 65535));
  o.workers = int(env::get_long("SBG_SERVE_WORKERS", o.workers, 1, 256));
  o.per_job_threads = int(
      env::get_long("SBG_SERVE_PER_JOB_THREADS", o.per_job_threads, 1, 1024));
  o.queue_cap = int(env::get_long("SBG_SERVE_QUEUE", o.queue_cap, 1, 1 << 20));
  o.default_deadline_ms =
      env::get_double("SBG_SERVE_DEADLINE_MS", o.default_deadline_ms);
  o.telemetry_flush_s =
      env::get_double("SBG_SERVE_FLUSH_MS", o.telemetry_flush_s * 1000.0) /
      1000.0;
  // The registry's eviction budget: its own knob first, else the
  // process-wide out-of-core budget (SBG_MEM_BUDGET) so one setting caps
  // both the hot-graph cache and piece scheduling.
  o.mem_cap_bytes = env::bytes(
      "SBG_SERVE_MEM_CAP", env::bytes("SBG_MEM_BUDGET", o.mem_cap_bytes));
  o.limits.max_body_bytes = std::size_t(
      env::bytes("SBG_SERVE_MAX_BODY", o.limits.max_body_bytes));
  o.dataset_scale = env::get_double("SBG_SERVE_SCALE", o.dataset_scale);
  return o;
}

Server::Server(ServerOptions opt)
    : opt_(opt),
      registry_(RegistryOptions{opt.mem_cap_bytes, opt.dataset_scale,
                                opt.dataset_seed}) {}

Server::~Server() { shutdown(); }

bool Server::start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    if (error != nullptr) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  listen_fd_ = open_listener(opt_.port, &port_, error);
  if (listen_fd_ < 0) return false;

  last_flush_ns_.store(now_ns(), std::memory_order_relaxed);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(std::size_t(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  SBG_GAUGE_SET("serve.workers", double(opt_.workers));
  return true;
}

void Server::request_shutdown() {
  // Async-signal-safe on purpose: the sbg_serve SIGTERM handler calls this.
  // Only an atomic store and a pipe write — the acceptor wakes on the pipe
  // and performs the non-signal-safe teardown (cv notify, close) itself.
  stopping_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  // Final telemetry flush: everything the served jobs learned survives the
  // process. IO failure must not turn a clean drain into a crash.
  tune::save_global_store();
}

void Server::shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  request_shutdown();
  wait();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire) ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    // Admission control: a bounded queue, and the decision is made HERE so
    // an overloaded server answers 429 in microseconds instead of letting
    // clients pile up behind a solve.
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (int(queue_.size()) < opt_.queue_cap) {
        queue_.push_back(fd);
        admitted = true;
        SBG_GAUGE_SET("serve.queue_depth", double(queue_.size()));
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
      SBG_COUNTER_ADD("serve.admitted", 1);
    } else {
      SBG_COUNTER_ADD("serve.admission_rejects", 1);
      write_http_response(fd, kOverloadResponse);
      // Graceful close, short-fused: the request was never read, and an
      // abrupt close would RST the 429 away before the client sees it. The
      // 100ms bound caps how long a hostile client can hold the acceptor.
      drain_and_close(fd, 0.1);
    }
  }
  // Drain begins: refuse new connections at the socket level. Queued fds
  // stay queued — the workers still serve them.
  ::close(listen_fd_);
  listen_fd_ = -1;
  queue_cv_.notify_all();
}

void Server::worker_loop(int id) {
  // Each worker is its own OpenMP contention group, exactly like a sched
  // batch worker: its jobs' parallel regions are capped at per_job_threads.
  set_num_threads(std::max(1, opt_.per_job_threads));
  SBG_TRACE_THREAD_NAME("serve-worker-" + std::to_string(id));
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      // Bounded wait instead of a pure cv sleep: the periodic telemetry
      // flush ticks even when no requests arrive.
      queue_cv_.wait_for(lock, std::chrono::milliseconds(200), [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (!queue_.empty()) {
        fd = queue_.front();
        queue_.pop_front();
        SBG_GAUGE_SET("serve.queue_depth", double(queue_.size()));
      } else if (stopping_.load(std::memory_order_acquire)) {
        return;  // drained: queue empty and no more arrivals
      }
    }
    if (fd >= 0) {
      handle_connection(fd);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
    maybe_flush_telemetry();
  }
}

void Server::handle_connection(int fd) {
  HttpRequest req;
  std::string perr;
  const ParseStatus st = read_http_request(fd, opt_.limits, &req, &perr);
  HttpResponse res;
  switch (st) {
    case ParseStatus::kOk:
      try {
        res = route(req);
      } catch (const std::exception& e) {
        // Route handlers map expected failures themselves; anything that
        // still throws is a server bug surfaced as 500, never a dead worker.
        res.status = 500;
        res.body = error_body(std::string("internal error: ") + e.what());
        SBG_COUNTER_ADD("serve.internal_errors", 1);
      }
      break;
    case ParseStatus::kClosed:
      ::close(fd);  // nothing arrived / peer vanished: nothing to answer
      SBG_COUNTER_ADD("serve.closed_early", 1);
      return;
    case ParseStatus::kTimeout:
      res.status = 408;
      res.body = error_body(perr);
      break;
    case ParseStatus::kTooLarge:
      res.status = perr.find("header") != std::string::npos ? 431 : 413;
      res.body = error_body(perr);
      break;
    case ParseStatus::kUnsupported:
      res.status = 501;
      res.body = error_body(perr);
      break;
    case ParseStatus::kMalformed:
      res.status = 400;
      res.body = error_body(perr);
      break;
  }
  write_http_response(fd, res);
  // Error paths answer before consuming the request (413 decides on the
  // Content-Length header alone); drain what is left so the close FINs
  // instead of RSTing the response away.
  drain_and_close(fd);
  SBG_COUNTER_ADD("serve.responses", 1);
  if (res.status >= 400) SBG_COUNTER_ADD("serve.error_responses", 1);
}

HttpResponse Server::route(const HttpRequest& req) {
  SBG_SPAN("serve.request");
  if (req.target == "/healthz") {
    if (req.method != "GET") return {405, "application/json",
                                     error_body("healthz is GET-only")};
    return handle_healthz();
  }
  if (req.target == "/metrics") {
    if (req.method != "GET") return {405, "application/json",
                                     error_body("metrics is GET-only")};
    return handle_metrics();
  }
  if (req.target == "/v1/graphs") {
    if (req.method == "GET") return handle_graphs_get();
    if (req.method == "POST") return handle_graphs_post(req);
    return {405, "application/json", error_body("graphs is GET/POST")};
  }
  // /v1/graphs/<name>/updates — the only parameterized route; <name> is a
  // single path segment (registry names never contain '/').
  {
    constexpr const char kPrefix[] = "/v1/graphs/";
    constexpr const char kSuffix[] = "/updates";
    const std::size_t plen = sizeof(kPrefix) - 1;
    const std::size_t slen = sizeof(kSuffix) - 1;
    if (req.target.size() > plen + slen &&
        req.target.compare(0, plen, kPrefix) == 0 &&
        req.target.compare(req.target.size() - slen, slen, kSuffix) == 0) {
      const std::string name =
          req.target.substr(plen, req.target.size() - plen - slen);
      if (!name.empty() && name.find('/') == std::string::npos) {
        if (req.method != "POST") {
          return {405, "application/json",
                  error_body("updates is POST-only")};
        }
        return handle_updates(req, name);
      }
    }
  }
  if (req.target == "/v1/jobs") {
    if (req.method != "POST") return {405, "application/json",
                                      error_body("jobs is POST-only")};
    return handle_job(req);
  }
  return {404, "application/json", error_body("no such route: " + req.target)};
}

HttpResponse Server::handle_healthz() {
  std::string body = "{\"status\":\"ok\",\"draining\":";
  body += stopping_.load(std::memory_order_acquire) ? "true" : "false";
  body += ",\"requests_served\":" + std::to_string(requests_served()) + "}";
  return {200, "application/json", std::move(body)};
}

HttpResponse Server::handle_metrics() {
  return {200, "text/plain; version=0.0.4", obs::prometheus_exposition()};
}

HttpResponse Server::handle_graphs_get() {
  std::string body = "{\"graphs\":[";
  bool first = true;
  for (const RegistryEntryInfo& e : registry_.list()) {
    if (!first) body += ",";
    first = false;
    body += "{\"name\":";
    obs::append_json_string(body, e.name);
    body += ",\"vertices\":" + std::to_string(e.vertices);
    body += ",\"edges\":" + std::to_string(e.edges);
    body += ",\"bytes\":" + std::to_string(e.bytes);
    body += ",\"hits\":" + std::to_string(e.hits);
    body += ",\"source\":";
    obs::append_json_string(body, e.source);
    body += ",\"loaded_from_cache\":";
    body += e.loaded_from_cache ? "true" : "false";
    body += "}";
  }
  body += "],\"resident_bytes\":" + std::to_string(registry_.resident_bytes());
  body += ",\"mem_cap_bytes\":" + std::to_string(registry_.mem_cap_bytes());
  body += "}";
  return {200, "application/json", std::move(body)};
}

HttpResponse Server::handle_graphs_post(const HttpRequest& req) {
  std::string jerr;
  const std::optional<JsonValue> doc = parse_json(req.body, 32, &jerr);
  if (!doc || !doc->is_object()) {
    return {400, "application/json",
            error_body("request body must be a JSON object" +
                       (jerr.empty() ? "" : ": " + jerr))};
  }
  bool bad_type = false;
  const std::string name = doc->get_string("name", "", &bad_type);
  const std::string path = doc->get_string("path", "", &bad_type);
  const std::string dataset = doc->get_string("dataset", "", &bad_type);
  const double scale = doc->get_number("scale", opt_.dataset_scale, &bad_type);
  const double seed = doc->get_number("seed", double(opt_.dataset_seed),
                                      &bad_type);
  if (bad_type) {
    return {400, "application/json", error_body("field has wrong JSON type")};
  }
  if (name.empty()) {
    return {400, "application/json", error_body("missing field: name")};
  }

  try {
    if (!dataset.empty()) {
      auto g = std::make_shared<const CsrGraph>(
          make_dataset(dataset, scale, std::uint64_t(seed)));
      registry_.put(name, std::move(g), "dataset:" + dataset);
    } else if (!path.empty()) {
      ingest::LoadReport rep;
      auto g = ingest::load_shared(path, {}, &rep);
      registry_.put(name, std::move(g), "file:" + path, rep.cache_hit);
    } else {
      // No source given: resolve `name` itself (dataset name or path).
      std::string lerr;
      if (registry_.acquire(name, &lerr) == nullptr) {
        return {404, "application/json", error_body(lerr)};
      }
    }
  } catch (const std::exception& e) {
    return {404, "application/json",
            error_body("cannot load graph: " + std::string(e.what()))};
  }
  return handle_graphs_get();
}

HttpResponse Server::handle_job(const HttpRequest& req) {
  std::string jerr;
  const std::optional<JsonValue> doc = parse_json(req.body, 32, &jerr);
  if (!doc || !doc->is_object()) {
    return {400, "application/json",
            error_body("request body must be a JSON object" +
                       (jerr.empty() ? "" : ": " + jerr))};
  }
  bool bad_type = false;
  const std::string graph_name = doc->get_string("graph", "", &bad_type);
  const std::string problem_str = doc->get_string("problem", "mm", &bad_type);
  const std::string variant =
      doc->get_string("variant", sched::kAutoVariant, &bad_type);
  const double seed = doc->get_number("seed", 42, &bad_type);
  const double deadline_ms =
      doc->get_number("deadline_ms", opt_.default_deadline_ms, &bad_type);
  const bool verify = doc->get_bool("verify", true, &bad_type);
  const double sleep_ms = doc->get_number("sleep_ms", 0, &bad_type);
  if (bad_type) {
    return {400, "application/json", error_body("field has wrong JSON type")};
  }
  if (graph_name.empty()) {
    return {400, "application/json", error_body("missing field: graph")};
  }
  sched::Problem problem;
  if (!parse_problem(problem_str, &problem)) {
    return {422, "application/json",
            error_body("unknown problem '" + problem_str +
                       "' (expected mm/color/mis)")};
  }
  if (!variant_known(problem, variant)) {
    return {422, "application/json",
            error_body("unknown " + problem_str + " variant '" + variant + "'")};
  }

  // Test hook: hold this worker before solving, so tests and the serve fuzz
  // family can fill the admission queue deterministically.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::int64_t(std::min(sleep_ms, 10000.0))));
  }

  sched::JobSpec spec;
  spec.name = graph_name + "/" + problem_str + "/" + variant;
  spec.graph_name = graph_name;
  spec.problem = problem;
  spec.variant = variant;
  spec.seed = std::uint64_t(seed);
  std::string lerr;
  spec.graph = registry_.acquire(graph_name, &lerr);
  if (spec.graph == nullptr) {
    return {404, "application/json", error_body(lerr)};
  }

  // The same code path a CLI batch takes (prepare -> execute -> verify ->
  // telemetry record), so a serve answer is differentially comparable with
  // a direct run_job on the same spec.
  const sched::JobResult res = sched::run_job(spec, deadline_ms, verify);
  SBG_COUNTER_ADD("serve.jobs", 1);
  if (res.status == sched::JobStatus::kCancelled) {
    SBG_COUNTER_ADD("serve.jobs_cancelled", 1);
  } else if (res.status == sched::JobStatus::kFailed) {
    SBG_COUNTER_ADD("serve.jobs_failed", 1);
  }

  std::string body = "{\"name\":";
  obs::append_json_string(body, spec.name);
  body += ",\"graph\":";
  obs::append_json_string(body, graph_name);
  body += ",\"problem\":";
  obs::append_json_string(body, problem_str);
  body += ",\"variant\":";
  obs::append_json_string(body, variant);
  body += ",\"resolved_variant\":";
  obs::append_json_string(body, res.resolved_variant);
  body += ",\"status\":";
  obs::append_json_string(body, status_word(res.status));
  body += ",\"error\":";
  obs::append_json_string(body, res.error);
  body += ",\"seconds\":";
  obs::append_json_number(body, res.seconds);
  body += ",\"rounds\":" + std::to_string(res.rounds);
  body += ",\"value\":" + std::to_string(res.value);
  // Decimal string: uint64 hashes do not survive a double round-trip.
  body += ",\"result_hash\":\"" + std::to_string(res.result_hash) + "\"";
  body += ",\"deterministic\":";
  body += (!res.resolved_variant.empty() &&
           sched::schedule_deterministic(problem, res.resolved_variant))
              ? "true"
              : "false";
  body += ",\"obs\":" + obs::report_json({{"tool", "sbg_serve"}});
  body += "}";

  int status = 200;
  if (res.status == sched::JobStatus::kCancelled) status = 504;
  if (res.status == sched::JobStatus::kFailed) status = 500;
  return {status, "application/json", std::move(body)};
}

namespace {

/// Decode an optional "[[u,v],...]" member into an edge list. Absent is an
/// empty list; anything not an array of integer pairs is an error.
bool parse_edge_field(const JsonValue& doc, const char* field,
                      std::vector<Edge>* out, std::string* err) {
  const JsonValue* arr = doc.get(field);
  if (arr == nullptr) return true;
  if (!arr->is_array()) {
    *err = std::string(field) + " must be an array of [u,v] pairs";
    return false;
  }
  out->reserve(arr->as_array().size());
  for (const JsonValue& e : arr->as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 ||
        !e.as_array()[0].is_number() || !e.as_array()[1].is_number()) {
      *err = std::string(field) + " entries must be [u,v] number pairs";
      return false;
    }
    const double u = e.as_array()[0].as_number();
    const double v = e.as_array()[1].as_number();
    if (u < 0 || v < 0 || u != std::floor(u) || v != std::floor(v) ||
        u >= double(kNoVertex) || v >= double(kNoVertex)) {
      *err = std::string(field) +
             " endpoints must be integers in [0, 4294967294)";
      return false;
    }
    out->push_back({vid_t(u), vid_t(v)});
  }
  return true;
}

void append_repair_stats(std::string& body, const char* key,
                         const dyn::RepairStats& st) {
  body += "\"";
  body += key;
  body += "\":{\"frontier\":" + std::to_string(st.frontier);
  body += ",\"repaired\":" + std::to_string(st.repaired);
  body += ",\"rounds\":" + std::to_string(st.rounds);
  body += ",\"seconds\":";
  obs::append_json_number(body, st.seconds);
  body += "}";
}

}  // namespace

HttpResponse Server::handle_updates(const HttpRequest& req,
                                    const std::string& graph_name) {
  std::string jerr;
  const std::optional<JsonValue> doc = parse_json(req.body, 32, &jerr);
  if (!doc || !doc->is_object()) {
    return {400, "application/json",
            error_body("request body must be a JSON object" +
                       (jerr.empty() ? "" : ": " + jerr))};
  }
  bool bad_type = false;
  const bool verify = doc->get_bool("verify", true, &bad_type);
  const double deadline_ms =
      doc->get_number("deadline_ms", opt_.default_deadline_ms, &bad_type);
  const double seed = doc->get_number("seed", 42, &bad_type);
  if (bad_type) {
    return {400, "application/json", error_body("field has wrong JSON type")};
  }

  dyn::UpdateBatch batch;
  std::string perr;
  if (!parse_edge_field(*doc, "insert", &batch.insert, &perr) ||
      !parse_edge_field(*doc, "delete", &batch.remove, &perr)) {
    return {400, "application/json", error_body(perr)};
  }

  std::shared_ptr<dyn::Session> session;
  {
    std::lock_guard<std::mutex> lock(dyn_mu_);
    const auto it = dyn_sessions_.find(graph_name);
    if (it != dyn_sessions_.end()) session = it->second;
  }
  if (session == nullptr) {
    std::string lerr;
    std::shared_ptr<const CsrGraph> g = registry_.acquire(graph_name, &lerr);
    if (g == nullptr) {
      return {404, "application/json", error_body(lerr)};
    }
    dyn::SessionOptions sopt;
    sopt.seed = std::uint64_t(seed);
    // "repair" picks the maintained problems; only honored at session
    // creation (the first batch for this graph) — later batches repair
    // whatever the session maintains.
    if (const JsonValue* repair = doc->get("repair")) {
      if (!repair->is_array()) {
        return {400, "application/json",
                error_body("repair must be an array of problem names")};
      }
      sopt.maintain_mm = sopt.maintain_color = sopt.maintain_mis = false;
      for (const JsonValue& p : repair->as_array()) {
        if (!p.is_string()) {
          return {400, "application/json",
                  error_body("repair entries must be strings")};
        }
        if (p.as_string() == "mm") {
          sopt.maintain_mm = true;
        } else if (p.as_string() == "color") {
          sopt.maintain_color = true;
        } else if (p.as_string() == "mis") {
          sopt.maintain_mis = true;
        } else {
          return {422, "application/json",
                  error_body("unknown repair problem '" + p.as_string() +
                             "' (expected mm/color/mis)")};
        }
      }
    }
    // The initial solves run outside dyn_mu_ (they can be seconds on a big
    // graph); racing creators are resolved first-insert-wins and the
    // loser's session is discarded.
    auto fresh = std::make_shared<dyn::Session>(std::move(g), sopt);
    std::lock_guard<std::mutex> lock(dyn_mu_);
    session = dyn_sessions_.emplace(graph_name, std::move(fresh))
                  .first->second;
  }

  // Cap per-batch vertex growth so one hostile endpoint id cannot balloon
  // the per-vertex delta arrays.
  constexpr std::uint64_t kMaxGrow = 1u << 20;
  const std::uint64_t grow_cap =
      std::uint64_t(session->num_vertices()) + kMaxGrow;
  for (const Edge& e : batch.insert) {
    const std::uint64_t top = std::max(e.u, e.v);
    if (top >= grow_cap) {
      return {422, "application/json",
              error_body("inserted endpoint " + std::to_string(top) +
                         " exceeds the vertex growth cap (current n + 2^20)")};
    }
  }

  sched::UpdateJobSpec spec;
  spec.name =
      graph_name + "/updates/" + std::to_string(session->batches_applied());
  spec.graph_name = graph_name;
  spec.session = session;
  spec.batch = std::move(batch);
  spec.verify = verify;
  const sched::UpdateJobResult res = sched::run_update_job(spec, deadline_ms);
  SBG_COUNTER_ADD("serve.update_jobs", 1);
  if (res.status == sched::JobStatus::kCancelled) {
    SBG_COUNTER_ADD("serve.update_jobs_cancelled", 1);
  } else if (res.status == sched::JobStatus::kFailed) {
    SBG_COUNTER_ADD("serve.update_jobs_failed", 1);
  }

  const dyn::UpdateOutcome& o = res.outcome;
  std::string body = "{\"graph\":";
  obs::append_json_string(body, graph_name);
  body += ",\"status\":";
  obs::append_json_string(body, status_word(res.status));
  body += ",\"error\":";
  obs::append_json_string(body, res.error);
  body += ",\"inserted\":" + std::to_string(o.inserted);
  body += ",\"removed\":" + std::to_string(o.removed);
  body += ",\"new_vertices\":" + std::to_string(o.new_vertices);
  body += ",\"vertices\":" + std::to_string(o.num_vertices);
  body += ",\"edges\":" + std::to_string(o.num_edges);
  body += ",\"repair\":{";
  append_repair_stats(body, "mm", o.mm);
  body += ",";
  append_repair_stats(body, "color", o.color);
  body += ",";
  append_repair_stats(body, "mis", o.mis);
  body += "}";
  body += ",\"mm_cardinality\":" + std::to_string(o.mm_cardinality);
  body += ",\"palette\":" + std::to_string(o.palette);
  body += ",\"mis_size\":" + std::to_string(o.mis_size);
  // Decimal strings: uint64 hashes do not survive a double round-trip.
  body += ",\"mm_hash\":\"" + std::to_string(o.mm_hash) + "\"";
  body += ",\"color_hash\":\"" + std::to_string(o.color_hash) + "\"";
  body += ",\"mis_hash\":\"" + std::to_string(o.mis_hash) + "\"";
  body += ",\"graph_hash\":\"" + std::to_string(o.graph_hash) + "\"";
  body += ",\"verified\":";
  body += o.verified ? "true" : "false";
  body += ",\"batches\":" + std::to_string(session->batches_applied());
  body += ",\"seconds\":";
  obs::append_json_number(body, res.seconds);
  body += "}";

  int status = 200;
  if (res.status == sched::JobStatus::kCancelled) status = 504;
  if (res.status == sched::JobStatus::kFailed) status = 500;
  return {status, "application/json", std::move(body)};
}

void Server::maybe_flush_telemetry() {
  if (opt_.telemetry_flush_s <= 0) return;
  const std::int64_t interval_ns =
      std::int64_t(opt_.telemetry_flush_s * 1e9);
  const std::int64_t last = last_flush_ns_.load(std::memory_order_relaxed);
  if (now_ns() - last < interval_ns) return;
  // One flusher at a time; losers just skip — the winner writes everything.
  if (flush_in_progress_.exchange(true)) return;
  last_flush_ns_.store(now_ns(), std::memory_order_relaxed);
  tune::global_store().flush(tune::default_store_path());
  flush_in_progress_.store(false);
}

}  // namespace sbg::serve
