// Minimal JSON value parser for service request bodies.
//
// The daemon accepts untrusted bytes from the network, so unlike the strict
// single-schema cursors elsewhere in the tree (tune::StoreParser pins the
// telemetry-store layout), requests need a small generic parser: clients
// send fields in any order, omit optional ones, and fuzzers send garbage.
// This is a recursive-descent parser over the full JSON grammar with a
// depth cap (default 32) and no dependencies; numbers are doubles, strings
// support the \u00XX escapes our writers emit plus full surrogate-free BMP
// escapes. Parse failures return std::nullopt — the server maps them to
// HTTP 400, never an exception across the socket loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sbg::serve {

/// One parsed JSON value. Objects keep only the LAST value for a repeated
/// key (matching common parser behaviour); member order is not preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const { return object_; }

  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* get(const std::string& key) const;

  // ------------------------------------------------ typed field helpers --
  // For request decoding: each returns the fallback when the member is
  // missing, and sets *type_error when it exists with the wrong type (so
  // handlers can reject {"seed": "forty-two"} instead of ignoring it).

  std::string get_string(const std::string& key, const std::string& fallback,
                         bool* type_error = nullptr) const;
  double get_number(const std::string& key, double fallback,
                    bool* type_error = nullptr) const;
  bool get_bool(const std::string& key, bool fallback,
                bool* type_error = nullptr) const;

  // Construction (used by the parser; tests build expected values directly).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(std::map<std::string, JsonValue> o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse `text` as one complete JSON document (leading/trailing whitespace
/// allowed, nothing else). Returns std::nullopt on any syntax error, on
/// nesting deeper than `max_depth`, or on non-finite numbers. Never throws.
std::optional<JsonValue> parse_json(const std::string& text,
                                    int max_depth = 32,
                                    std::string* error = nullptr);

}  // namespace sbg::serve
