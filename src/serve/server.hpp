// sbg::serve — the resident graph-analytics service (DESIGN.md §11).
//
// A Server is a long-running daemon over the existing machinery: the
// sched prepare/execute/verify job stages do the solving, the GraphRegistry
// keeps hot CSRs resident across requests, the tune telemetry store warms
// with every job so "auto" requests get faster as the service runs, and the
// obs exporter renders /metrics. The HTTP front end is a blocking accept
// loop feeding a bounded connection queue drained by a worker pool — no
// external deps, no async machinery; concurrency comes from the workers
// (each its own OpenMP contention group, exactly like a sched batch worker).
//
// API:
//   POST /v1/jobs    {"graph": <registry name | dataset | path>,
//                     "problem": "mm"|"color"|"mis",
//                     "variant": "<registry name>" | "auto" (default),
//                     "seed": N (JSON number: exact up to 2^53),
//                     "deadline_ms": D, "verify": true,
//                     "sleep_ms": S (test hook: hold the worker busy)}
//                    -> 200 job JSON (status/seconds/rounds/value/
//                       result_hash/resolved_variant + embedded obs report)
//                    -> 400 malformed, 404 unknown graph, 422 unknown
//                       variant/problem, 500 solver or oracle failure,
//                       504 deadline exceeded (body status "cancelled")
//   POST /v1/graphs  {"name": ..., "path": ...} or {"name": ...,
//                     "dataset": ..., "scale": S, "seed": N} — warm a graph
//                     into the registry under an explicit name
//   POST /v1/graphs/<name>/updates
//                    {"insert": [[u,v],...], "delete": [[u,v],...],
//                     "verify": true, "deadline_ms": D,
//                     "seed": N, "repair": ["mm","color","mis"]}
//                    — one streaming update batch against the named graph's
//                    dyn::Session (created lazily on the first batch, when
//                    "seed"/"repair" take effect; the registry CSR is the
//                    base). Applies the batch and incrementally repairs the
//                    maintained solutions (src/dyn). 200 with per-kernel
//                    repair stats + solution hashes; 404 unknown graph,
//                    400 malformed, 422 endpoint ids out of range, 500
//                    oracle failure, 504 deadline exceeded.
//   GET  /v1/graphs  registry listing + resident/cap bytes
//   GET  /metrics    Prometheus text exposition of the live obs registry
//   GET  /healthz    {"status":"ok","draining":false}
//
// Admission control: the connection queue is bounded (queue_cap); a client
// arriving with the queue full gets an immediate 429 and the accept loop
// moves on — workers are never blocked by overload, and memory stays
// bounded no matter how many clients pile up. Per-request deadlines ride
// the cooperative CancelToken polls inside the solvers, exactly as in a
// batch run, and map to HTTP 504.
//
// Shutdown drains: request_shutdown() (async-signal-safe, called from the
// SIGTERM handler in sbg_serve) stops the accept loop, already-queued
// connections are still served, in-flight jobs run to completion, the
// telemetry store is flushed, and wait() returns. New connections during
// the drain are refused at the socket level (listener closed).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dyn/session.hpp"
#include "serve/http.hpp"
#include "serve/registry.hpp"

namespace sbg::serve {

struct ServerOptions {
  int port = 0;             ///< 0 = ephemeral (bound port via Server::port())
  int workers = 4;          ///< request worker threads
  int per_job_threads = 1;  ///< OpenMP team inside each worker's jobs
  int queue_cap = 64;       ///< pending connections before 429
  double default_deadline_ms = 0;   ///< applied when a job sends none
  double telemetry_flush_s = 5.0;   ///< periodic tune-store flush; <=0 off
  std::uint64_t mem_cap_bytes = 0;  ///< registry budget; 0 = unlimited
  double dataset_scale = 1.0 / 32.0;
  std::uint64_t dataset_seed = 42;
  HttpLimits limits;
};

/// ServerOptions from SBG_SERVE_* (see ENVIRONMENT.md): PORT, WORKERS,
/// PER_JOB_THREADS, QUEUE, DEADLINE_MS, MEM_CAP (bytes, K/M/G suffixes),
/// MAX_BODY, FLUSH_MS, SCALE. Unset variables keep the defaults above;
/// malformed values throw InputError naming the variable.
ServerOptions options_from_env();

class Server {
 public:
  explicit Server(ServerOptions opt = {});
  ~Server();  ///< implies shutdown() + wait()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept loop + workers. False with *error
  /// on bind failure. Idempotent-hostile: a Server starts once.
  bool start(std::string* error);

  /// TCP port actually bound (after start()).
  int port() const { return port_; }

  /// Begin the drain: stop accepting, serve what is queued, finish what is
  /// in flight. Safe from any thread and from a signal handler (atomic
  /// store + pipe write). Idempotent.
  void request_shutdown();

  /// Block until the drain completes and all threads are joined. Also
  /// flushes the telemetry store one final time. Idempotent.
  void wait();

  /// request_shutdown() + wait().
  void shutdown();

  /// True once a drain was requested (signal or shutdown call).
  bool draining() const { return stopping_.load(std::memory_order_acquire); }

  /// Requests fully served since start (any status).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  GraphRegistry& registry() { return registry_; }

 private:
  void accept_loop();
  void worker_loop(int id);
  void handle_connection(int fd);

  HttpResponse route(const HttpRequest& req);
  HttpResponse handle_job(const HttpRequest& req);
  HttpResponse handle_graphs_get();
  HttpResponse handle_graphs_post(const HttpRequest& req);
  HttpResponse handle_updates(const HttpRequest& req,
                              const std::string& graph_name);
  HttpResponse handle_metrics();
  HttpResponse handle_healthz();

  void maybe_flush_telemetry();

  ServerOptions opt_;
  GraphRegistry registry_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: signal-safe shutdown wakeup

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::int64_t> last_flush_ns_{0};
  std::atomic<bool> flush_in_progress_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  ///< accepted connection fds awaiting a worker

  /// Dynamic sessions keyed by registry graph name, created lazily on the
  /// first updates batch. The map lock only guards lookup/insert; batches
  /// serialize on each Session's own mutex, so updates to different graphs
  /// run concurrently.
  std::mutex dyn_mu_;
  std::map<std::string, std::shared_ptr<dyn::Session>> dyn_sessions_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex join_mu_;
  bool joined_ = false;
};

}  // namespace sbg::serve
