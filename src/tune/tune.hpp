// sbg::tune — adaptive decomposition selection (the paper's Table I as a
// policy, not just a report).
//
// The paper's headline result is that no single decomposition wins: the
// best of BRIDGE / RAND / DEGk depends on the graph's structure and on the
// problem. The structural fingerprints that decide it (avg degree, %deg<=2,
// %bridges — the Table II columns) are all cheap to compute, so this module
// turns them into a selector:
//
//   1. an explicit, testable DECISION TABLE seeded from Table I maps
//      (fingerprint, problem) -> (variant, k, partitions, threads);
//   2. a TELEMETRY STORE keeps a per-(graph, problem, variant) EWMA of
//      wall-clock seconds and solver rounds from prior sched::run_job runs,
//      persisted as JSON next to the .sbgc cache (SBG_TUNE_PATH /
//      SBG_CACHE_DIR), so warm processes lock in the measured winner;
//   3. the SELECTOR follows the measure -> tune -> lock-in loop: cold start
//      answers from the table, a bounded exploration pass samples each
//      candidate min_runs times, and after that the EWMA-best variant wins
//      whenever it beats the table's pick by the lock-in margin.
//
// Consumed by sched::prepare_job (JobSpec variant "auto"), the sbg_tool
// `auto` subcommand, and bench_auto_select (which gates the selector's
// regret against the per-graph best explicit variant).
//
// A corrupt, truncated, or version-mismatched history file always degrades
// to the static table — never an error (mirror of the .sbgc
// degrade-to-reparse guarantee).
#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/bridge.hpp"
#include "graph/csr.hpp"
#include "graph/dataset.hpp"
#include "sched/sched.hpp"

namespace sbg::tune {

/// The deciding structural fingerprint of a graph — the Table II columns.
struct Fingerprint {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;  ///< directed arc count (2x undirected edges)
  double avg_degree = 0.0;     ///< arcs / vertices
  double pct_deg2 = 0.0;       ///< % vertices with degree <= 2
  double pct_bridges = 0.0;    ///< % undirected edges that are bridges
};

/// Measure g's fingerprint (one stats pass + one bridge find).
Fingerprint fingerprint_of(const CsrGraph& g,
                           BridgeAlgo algo = BridgeAlgo::kShortcutWalk);

/// The paper-reported fingerprint of a Table II row (for decision-table
/// tests and paper-scale what-if queries; no graph needs to exist).
Fingerprint fingerprint_of(const DatasetPaperRow& row);

/// Stable telemetry key for a graph: "<name>|<vertices>|<arcs>". Needs no
/// fingerprint, so explicit (non-auto) runs can be recorded cheaply. Two
/// distinct graphs with equal name, |V| and arc count share history — by
/// design (dataset reloads at one scale must hit the same entry).
std::string graph_key(const std::string& name, const CsrGraph& g);

/// Which decomposition family a registered variant name belongs to.
enum class VariantKind { kBaseline, kBridge, kRand, kDegk };
const char* to_string(VariantKind k);
VariantKind variant_kind(const std::string& variant);

/// A selector decision. `variant` is always a name registered in
/// check/solvers.hpp for the problem, so sched can execute it directly.
struct Choice {
  std::string variant;
  VariantKind kind = VariantKind::kBaseline;
  /// Decomposition parameter: degree bound for DEGk, partition count for
  /// RAND; inert (2) for baseline/BRIDGE so every choice satisfies k >= 2.
  vid_t k = 2;
  /// RAND partition count (1 when the choice does not partition).
  int partitions = 1;
  /// Suggested OpenMP team size for the solve.
  int threads = 1;
  /// Which table rule or telemetry policy produced this ("table:dense",
  /// "explore", "telemetry:lock-in", ...).
  std::string reason;
  bool from_telemetry = false;
};

/// Per-(graph, problem, variant) run history: exponentially weighted moving
/// averages so one noisy run cannot flip the selector.
struct VariantStats {
  std::uint64_t runs = 0;
  double ewma_seconds = 0.0;
  double ewma_rounds = 0.0;
};

/// Thread-safe EWMA history with JSON persistence. All methods are safe to
/// call from concurrent sched workers.
class TelemetryStore {
 public:
  /// Weight of the newest sample in the EWMA (first sample seeds it).
  static constexpr double kAlpha = 0.3;

  void record(const std::string& graph_key, sched::Problem problem,
              const std::string& variant, double seconds, double rounds);

  std::optional<VariantStats> stats(const std::string& graph_key,
                                    sched::Problem problem,
                                    const std::string& variant) const;

  std::size_t size() const;
  /// True when record() ran since the last save()/load()/clear().
  bool dirty() const;
  void clear();

  /// {"sbg_tune_version":1,"entries":[{"key":...,"runs":...,...},...]}
  std::string to_json() const;

  /// Strict parse of to_json()'s schema. Any malformed, truncated, or
  /// version-mismatched input leaves the store EMPTY and returns false —
  /// the selector then answers from the static table. Never throws.
  bool from_json(const std::string& text);

  /// Load `path`. Missing, unreadable, or corrupt files degrade to an empty
  /// store (return false). Never throws.
  bool load(const std::string& path);

  /// Atomic write (temp file + rename), like the .sbgc cache writer, so a
  /// concurrent reader never sees a partial store. Throws InputError on IO
  /// failure.
  void save(const std::string& path) const;

  /// save(path) only if dirty, never throwing: IO failure lands in *error
  /// and returns false. The periodic flush hooks (sched::run_batch workers
  /// mid-batch, the sbg_serve daemon) call this so a killed process loses
  /// at most one flush interval of session EWMAs instead of everything
  /// since the last post-join save. No-op success when path is empty.
  bool flush(const std::string& path, std::string* error = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, VariantStats> entries_;  // "<graph>|<problem>|<variant>"
  mutable bool dirty_ = false;
};

struct SelectorOptions {
  /// Samples a candidate needs before the selector trusts its EWMA; also
  /// the per-candidate exploration budget.
  std::uint64_t min_runs = 2;
  /// A telemetry winner must beat the table pick's EWMA by this factor to
  /// take over (guards against flapping on noise).
  double lock_in_margin = 0.9;
  /// Explore candidates that still lack min_runs samples (round-robin,
  /// table pick first). Disable for pure table + lock-in behaviour.
  bool explore = true;
};

/// Maps (fingerprint, problem) -> Choice: static decision table plus the
/// optional telemetry refinement described in the header comment.
class Selector {
 public:
  explicit Selector(const TelemetryStore* history = nullptr,
                    SelectorOptions opt = {});

  /// `graph_key` selects the history rows consulted; with an empty key or
  /// no history the answer is the static table's.
  Choice choose(const Fingerprint& fp, sched::Problem problem,
                const std::string& graph_key = "") const;

  /// The static decision table alone (rules documented in DESIGN.md §10).
  static Choice table_choice(const Fingerprint& fp, sched::Problem problem);

  /// CPU Table-I candidate variants for `problem` (baseline first), the
  /// same cells table1_matrix() runs.
  static const std::vector<std::string>& candidates(sched::Problem problem);

 private:
  const TelemetryStore* history_;
  SelectorOptions opt_;
};

// ------------------------------------------------- process-global tuner --
// sched::prepare_job and sbg_tool `auto` share one store + fingerprint
// cache so every run in the process (explicit or auto) refines later picks.

/// The process-global history, lazily loaded from default_store_path().
TelemetryStore& global_store();

/// Where the global store persists: $SBG_TUNE_PATH if set, else
/// $SBG_CACHE_DIR/sbg_tune.json if SBG_CACHE_DIR is set, else "" —
/// persistence disabled (the in-process store still refines picks).
std::string default_store_path();

/// Save the global store to default_store_path() when dirty. Returns false
/// with *error filled on IO failure; true (no-op) when persistence is
/// disabled or the store is clean. Called by run_batch and sbg_tool auto.
bool save_global_store(std::string* error = nullptr);

/// Resolve a choice for g using the global store. The fingerprint is
/// computed once per graph_key and cached for the process lifetime.
Choice choose_for_graph(const CsrGraph& g, sched::Problem problem,
                        const std::string& graph_key,
                        SelectorOptions opt = {});

/// Record one finished run into the global store (sched::run_job calls this
/// for every successful job, auto-resolved or explicit).
void record_run(const std::string& graph_key, sched::Problem problem,
                const std::string& variant, double seconds, double rounds);

}  // namespace sbg::tune
