#include "tune/tune.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <unordered_map>

#include <unistd.h>

#include "common.hpp"
#include "graph/stats.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "parallel/thread_env.hpp"

namespace sbg::tune {

namespace {

// Decision-table thresholds (DESIGN.md §10). Named so the boundary tests in
// tests/test_tune.cpp pin the same constants the selector uses.
constexpr std::uint64_t kTinyVertices = 256;  ///< below: overhead dominates
constexpr double kBridgeHeavyPct = 30.0;      ///< %bridges at/above: BRIDGE
constexpr double kLowDegreePct = 45.0;        ///< %deg<=2 at/above and ...
constexpr double kLowDegreeAvg = 4.0;         ///< ... avg deg at/below: DEGk
constexpr double kDenseAvg = 32.0;            ///< avg deg at/above: dense

std::string entry_key(const std::string& graph_key, sched::Problem problem,
                      const std::string& variant) {
  return graph_key + "|" + sched::to_string(problem) + "|" + variant;
}

/// Suggested OpenMP team for a solve: one thread per ~256K arcs, capped at
/// the hardware. Small graphs run serial — their rounds are barrier-bound.
int suggest_threads(std::uint64_t arcs) {
  const std::uint64_t per_thread = std::uint64_t{1} << 18;
  const std::uint64_t want = 1 + arcs / per_thread;
  return static_cast<int>(std::min<std::uint64_t>(
      want, static_cast<std::uint64_t>(std::max(1, max_threads()))));
}

/// RAND partition count for a fingerprint: the paper's Section III-B2
/// heuristic (k near the average degree, k=100 for kron-class density).
int suggest_partitions(const Fingerprint& fp) {
  if (fp.avg_degree >= kDenseAvg) return 100;
  return static_cast<int>(std::clamp<long>(std::lround(fp.avg_degree), 2, 32));
}

/// Fill the kind-dependent fields of a choice for `variant`.
Choice make_choice(const Fingerprint& fp, const std::string& variant,
                   std::string reason) {
  Choice c;
  c.variant = variant;
  c.kind = variant_kind(variant);
  c.threads = suggest_threads(fp.num_arcs);
  c.reason = std::move(reason);
  switch (c.kind) {
    case VariantKind::kRand:
      c.partitions = suggest_partitions(fp);
      c.k = static_cast<vid_t>(c.partitions);
      break;
    case VariantKind::kDegk:
      c.k = 2;  // the degk-* / degk2 registry variants fix k = 2
      break;
    case VariantKind::kBaseline:
    case VariantKind::kBridge:
      break;  // k stays at the inert 2, partitions at 1
  }
  return c;
}

}  // namespace

Fingerprint fingerprint_of(const CsrGraph& g, BridgeAlgo algo) {
  SBG_SPAN("tune.fingerprint");
  Fingerprint fp;
  const GraphStats s = graph_stats(g);
  fp.num_vertices = s.num_vertices;
  fp.num_arcs = 2ull * s.num_edges;
  fp.avg_degree = s.avg_degree;
  fp.pct_deg2 = s.pct_deg2;
  if (s.num_edges > 0) {
    const std::size_t bridges = find_bridges(g, algo).size();
    fp.pct_bridges = 100.0 * static_cast<double>(bridges) /
                     static_cast<double>(s.num_edges);
  }
  SBG_COUNTER_ADD("tune.fingerprints", 1);
  return fp;
}

Fingerprint fingerprint_of(const DatasetPaperRow& row) {
  Fingerprint fp;
  fp.num_vertices = row.num_vertices;
  fp.num_arcs = row.num_arcs;
  fp.avg_degree = row.avg_degree;
  fp.pct_deg2 = row.pct_deg2;
  fp.pct_bridges = row.pct_bridges;
  return fp;
}

std::string graph_key(const std::string& name, const CsrGraph& g) {
  return (name.empty() ? std::string("g") : name) + "|" +
         std::to_string(g.num_vertices()) + "|" +
         std::to_string(2ull * g.num_edges());
}

const char* to_string(VariantKind k) {
  switch (k) {
    case VariantKind::kBaseline: return "baseline";
    case VariantKind::kBridge: return "bridge";
    case VariantKind::kRand: return "rand";
    case VariantKind::kDegk: return "degk";
  }
  return "?";
}

VariantKind variant_kind(const std::string& variant) {
  // Registry naming: composites are "<decomposition>-<engine>" on the CPU
  // ("bridge-gm", "rand-vb", "degk-eb"), bare decomposition names for MIS
  // ("bridge", "rand", "degk2"); everything else is a baseline engine.
  if (variant.rfind("bridge", 0) == 0) return VariantKind::kBridge;
  if (variant.rfind("rand", 0) == 0) return VariantKind::kRand;
  if (variant.rfind("degk", 0) == 0) return VariantKind::kDegk;
  return VariantKind::kBaseline;
}

// ---------------------------------------------------------------- store --

void TelemetryStore::record(const std::string& graph_key,
                            sched::Problem problem, const std::string& variant,
                            double seconds, double rounds) {
  if (!(seconds >= 0) || !std::isfinite(seconds)) return;  // poisoned sample
  const std::string key = entry_key(graph_key, problem, variant);
  std::lock_guard<std::mutex> lock(mu_);
  VariantStats& s = entries_[key];
  if (s.runs == 0) {
    s.ewma_seconds = seconds;
    s.ewma_rounds = rounds;
  } else {
    s.ewma_seconds += kAlpha * (seconds - s.ewma_seconds);
    s.ewma_rounds += kAlpha * (rounds - s.ewma_rounds);
  }
  ++s.runs;
  dirty_ = true;
  SBG_COUNTER_ADD("tune.records", 1);
}

std::optional<VariantStats> TelemetryStore::stats(
    const std::string& graph_key, sched::Problem problem,
    const std::string& variant) const {
  const std::string key = entry_key(graph_key, problem, variant);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t TelemetryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool TelemetryStore::dirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_;
}

void TelemetryStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  dirty_ = false;
}

std::string TelemetryStore::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(64 + entries_.size() * 96);
  out += "{\"sbg_tune_version\":1,\"entries\":[";
  bool first = true;
  for (const auto& [key, s] : entries_) {
    if (!first) out += ',';
    first = false;
    out += "{\"key\":";
    obs::append_json_string(out, key);
    out += ",\"runs\":" + std::to_string(s.runs);
    out += ",\"ewma_seconds\":";
    obs::append_json_number(out, s.ewma_seconds);
    out += ",\"ewma_rounds\":";
    obs::append_json_number(out, s.ewma_rounds);
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

/// Strict cursor over the store schema. Every helper returns false on any
/// deviation; from_json then drops everything parsed so far.
class StoreParser {
 public:
  explicit StoreParser(const std::string& s) : s_(s) {}

  bool parse(std::map<std::string, VariantStats>& out) {
    std::uint64_t version = 0;
    if (!lit('{') || !key("sbg_tune_version") || !number_u64(version)) {
      return false;
    }
    if (version != 1) return false;
    if (!lit(',') || !key("entries") || !lit('[')) return false;
    ws();
    if (peek() == ']') {
      ++i_;
      return lit('}') && at_end();
    }
    for (;;) {
      std::string ekey;
      VariantStats st;
      double runs = 0;
      if (!lit('{') || !key("key") || !string(ekey)) return false;
      if (!lit(',') || !key("runs") || !number(runs)) return false;
      if (!lit(',') || !key("ewma_seconds") || !number(st.ewma_seconds)) {
        return false;
      }
      if (!lit(',') || !key("ewma_rounds") || !number(st.ewma_rounds)) {
        return false;
      }
      if (!lit('}')) return false;
      if (runs < 0 || runs != std::floor(runs)) return false;
      st.runs = static_cast<std::uint64_t>(runs);
      out[ekey] = st;
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      break;
    }
    return lit(']') && lit('}') && at_end();
  }

 private:
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool lit(char c) {
    ws();
    if (peek() != c) return false;
    ++i_;
    return true;
  }

  bool key(const char* name) {
    std::string k;
    if (!string(k) || k != name) return false;
    return lit(':');
  }

  bool string(std::string& out) {
    if (!lit('"')) return false;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        const char e = s_[i_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {  // writer only emits \u00XX for control bytes
            if (i_ + 4 > s_.size()) return false;
            unsigned v = 0;
            for (int d = 0; d < 4; ++d) {
              const char h = s_[i_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (v > 0x7f) return false;
            out += static_cast<char>(v);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    ws();
    // "null" is what append_json_number writes for non-finite values;
    // treat it as a poisoned entry -> reject the file.
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    if (peek() == '.') {
      ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (i_ == start) return false;
    char* end = nullptr;
    const std::string tok = s_.substr(start, i_ - start);
    out = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0' && std::isfinite(out);
  }

  bool number_u64(std::uint64_t& out) {
    double d = 0;
    if (!number(d) || d < 0 || d != std::floor(d)) return false;
    out = static_cast<std::uint64_t>(d);
    return true;
  }

  bool at_end() {
    ws();
    return i_ == s_.size();
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

bool TelemetryStore::from_json(const std::string& text) {
  std::map<std::string, VariantStats> parsed;
  const bool ok = StoreParser(text).parse(parsed);
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = ok ? std::move(parsed) : std::map<std::string, VariantStats>{};
  dirty_ = false;
  return ok;
}

bool TelemetryStore::load(const std::string& path) {
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      clear();
      SBG_COUNTER_ADD("tune.store.missing", 1);
      return false;
    }
    char buf[1 << 14];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
  }
  const bool ok = from_json(text);
  SBG_COUNTER_ADD(ok ? "tune.store.loaded" : "tune.store.corrupt", 1);
  return ok;
}

void TelemetryStore::save(const std::string& path) const {
  const std::string body = to_json();
  // Unique temp sibling + rename, the ingest-cache discipline: concurrent
  // processes saving the same store race benignly (last rename wins, both
  // files are complete).
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw InputError("tune: cannot write " + tmp);
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  const bool flushed = std::fclose(f) == 0 && wrote == body.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    throw InputError("tune: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw InputError("tune: cannot rename " + tmp + " -> " + path + ": " +
                     ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  dirty_ = false;
}

bool TelemetryStore::flush(const std::string& path, std::string* error) const {
  if (path.empty() || !dirty()) return true;
  try {
    save(path);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    SBG_COUNTER_ADD("tune.store.save_failed", 1);
    return false;
  }
  SBG_COUNTER_ADD("tune.store.saved", 1);
  return true;
}

// ------------------------------------------------------------- selector --

const std::vector<std::string>& Selector::candidates(sched::Problem problem) {
  // The CPU Table-I cells, baseline first — identical to table1_matrix().
  static const std::vector<std::string> kMm = {"gm", "bridge-gm", "rand-gm",
                                               "degk-gm"};
  static const std::vector<std::string> kColor = {"vb", "bridge-vb", "rand-vb",
                                                  "degk-vb"};
  static const std::vector<std::string> kMis = {"luby", "bridge", "rand",
                                                "degk2"};
  switch (problem) {
    case sched::Problem::kMM: return kMm;
    case sched::Problem::kColor: return kColor;
    case sched::Problem::kMis: return kMis;
  }
  return kMm;
}

Choice Selector::table_choice(const Fingerprint& fp, sched::Problem problem) {
  const std::vector<std::string>& cand = candidates(problem);
  const std::string& baseline = cand[0];

  // Rule 1 — tiny or edgeless graphs: any decomposition is pure overhead.
  if (fp.num_arcs == 0 || fp.num_vertices < kTinyVertices) {
    return make_choice(fp, baseline, "table:tiny");
  }
  // Rule 2 — bridge-heavy graphs (lp1, webbase-1M): removing bridges
  // shatters the graph, so BRIDGE's phase-1 pieces are nearly free.
  if (fp.pct_bridges >= kBridgeHeavyPct) {
    for (const std::string& v : cand) {
      if (variant_kind(v) == VariantKind::kBridge) {
        return make_choice(fp, v, "table:bridge-heavy");
      }
    }
  }
  // Rule 3 — road-class graphs (germany-osm, road-central): most vertices
  // sit at degree <= 2, exactly the mass DEGk peels into the fast oriented
  // low-degree solvers.
  if (fp.pct_deg2 >= kLowDegreePct && fp.avg_degree <= kLowDegreeAvg) {
    for (const std::string& v : cand) {
      if (variant_kind(v) == VariantKind::kDegk) {
        return make_choice(fp, v, "table:low-degree");
      }
    }
  }
  // Rule 4 — kron-class density: for MM, RAND (k=100, Section III-C)
  // breaks GM's long proposal chains; COLOR/MIS baselines already converge
  // in few rounds there, so a decomposition pass cannot pay for itself.
  if (fp.avg_degree >= kDenseAvg) {
    if (problem == sched::Problem::kMM) {
      return make_choice(fp, "rand-gm", "table:dense");
    }
    return make_choice(fp, baseline, "table:dense");
  }
  // Rule 5 — everything moderate (c-73, collaboration, web, rgg): RAND with
  // k near the average degree, the paper's most robust middle ground.
  for (const std::string& v : cand) {
    if (variant_kind(v) == VariantKind::kRand) {
      return make_choice(fp, v, "table:moderate");
    }
  }
  return make_choice(fp, baseline, "table:fallback");
}

Selector::Selector(const TelemetryStore* history, SelectorOptions opt)
    : history_(history), opt_(opt) {}

Choice Selector::choose(const Fingerprint& fp, sched::Problem problem,
                        const std::string& graph_key) const {
  Choice base = table_choice(fp, problem);
  if (history_ == nullptr || graph_key.empty()) return base;

  // Candidate order: the table pick first, then the rest of the Table-I
  // cells — so exploration starts from the heuristic's opinion.
  std::vector<std::string> order = {base.variant};
  for (const std::string& v : candidates(problem)) {
    if (v != base.variant) order.push_back(v);
  }

  std::vector<std::optional<VariantStats>> seen;
  seen.reserve(order.size());
  for (const std::string& v : order) {
    seen.push_back(history_->stats(graph_key, problem, v));
  }

  // Exploration: sample every candidate min_runs times before trusting
  // EWMAs. The table pick is order[0], so a cold store keeps answering
  // with the static table while its samples accumulate.
  if (opt_.explore) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::uint64_t runs = seen[i] ? seen[i]->runs : 0;
      if (runs < opt_.min_runs) {
        Choice c = make_choice(fp, order[i],
                               i == 0 ? base.reason : "explore");
        SBG_COUNTER_ADD("tune.choices_explore", 1);
        return c;
      }
    }
  } else if (!seen[0] || seen[0]->runs < opt_.min_runs) {
    return base;  // not enough history on the table pick to compare against
  }

  // Lock-in: the EWMA-best fully-sampled candidate takes over when it beats
  // the table pick by the margin; otherwise the table stands confirmed.
  std::size_t best = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (!seen[i] || seen[i]->runs < opt_.min_runs) continue;
    if (!seen[best] || seen[i]->ewma_seconds < seen[best]->ewma_seconds) {
      best = i;
    }
  }
  if (best != 0 && seen[best] && seen[0] &&
      seen[best]->ewma_seconds <= opt_.lock_in_margin * seen[0]->ewma_seconds) {
    Choice c = make_choice(fp, order[best], "telemetry:lock-in");
    c.from_telemetry = true;
    SBG_COUNTER_ADD("tune.choices_locked_in", 1);
    return c;
  }
  base.reason += " (telemetry confirms)";
  return base;
}

// --------------------------------------------------------- global tuner --

namespace {

struct GlobalTuner {
  TelemetryStore store;
  std::mutex fp_mu;
  std::unordered_map<std::string, Fingerprint> fingerprints;

  GlobalTuner() {
    const std::string path = default_store_path();
    if (!path.empty()) store.load(path);  // missing/corrupt -> empty store
  }
};

GlobalTuner& global_tuner() {
  static GlobalTuner t;
  return t;
}

}  // namespace

TelemetryStore& global_store() { return global_tuner().store; }

std::string default_store_path() {
  if (const char* p = std::getenv("SBG_TUNE_PATH"); p != nullptr && *p) {
    return p;
  }
  if (const char* d = std::getenv("SBG_CACHE_DIR"); d != nullptr && *d) {
    return (std::filesystem::path(d) / "sbg_tune.json").string();
  }
  return "";
}

bool save_global_store(std::string* error) {
  return global_store().flush(default_store_path(), error);
}

Choice choose_for_graph(const CsrGraph& g, sched::Problem problem,
                        const std::string& graph_key, SelectorOptions opt) {
  GlobalTuner& t = global_tuner();
  Fingerprint fp;
  {
    std::lock_guard<std::mutex> lock(t.fp_mu);
    const auto it = t.fingerprints.find(graph_key);
    if (it != t.fingerprints.end()) fp = it->second;
    else {
      // Compute outside the lock? The bridge find is parallel and two
      // workers racing to fingerprint the same graph would just duplicate
      // work; holding the lock serializes them instead, which is cheaper
      // in every batch shape we run (jobs on one graph arrive together).
      fp = fingerprint_of(g);
      t.fingerprints.emplace(graph_key, fp);
    }
  }
  return Selector(&t.store, opt).choose(fp, problem, graph_key);
}

void record_run(const std::string& graph_key, sched::Problem problem,
                const std::string& variant, double seconds, double rounds) {
  global_store().record(graph_key, problem, variant, seconds, rounds);
}

}  // namespace sbg::tune
