// Core scalar types and small utilities shared by every sbg module.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace sbg {

/// Vertex identifier. Graphs up to ~4.2B vertices.
using vid_t = std::uint32_t;
/// Edge identifier / edge-array offset (CSR stores each undirected edge twice).
using eid_t = std::uint64_t;

/// Sentinel for "no vertex" (unmatched mate, no parent, ...).
inline constexpr vid_t kNoVertex = std::numeric_limits<vid_t>::max();
/// Sentinel for "no edge".
inline constexpr eid_t kNoEdge = std::numeric_limits<eid_t>::max();
/// Sentinel for "uncolored" in coloring algorithms (colors are 0-based).
inline constexpr std::uint32_t kNoColor = std::numeric_limits<std::uint32_t>::max();

/// Thrown on malformed external input (files, user parameters).
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant check that stays on in release builds for cheap
/// predicates guarding correctness-critical state.
#define SBG_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond)) [[unlikely]] {                                   \
      throw std::logic_error(std::string("SBG_CHECK failed: ") + \
                             (msg) + " at " __FILE__ ":" +        \
                             std::to_string(__LINE__));           \
    }                                                             \
  } while (0)

}  // namespace sbg
