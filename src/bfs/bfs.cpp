#include "bfs/bfs.hpp"

#include <omp.h>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace sbg {

BfsTree bfs(const CsrGraph& g, vid_t root) {
  const vid_t n = g.num_vertices();
  BfsTree t;
  t.root = root;
  t.parent.assign(n, kNoVertex);
  t.level.assign(n, kNoVertex);
  if (n == 0) return t;
  SBG_CHECK(root < n, "BFS root out of range");

  t.level[root] = 0;
  t.reached = 1;
  std::vector<vid_t> frontier{root};
  std::vector<std::vector<vid_t>> next_local;

  vid_t depth = 0;
  while (!frontier.empty()) {
    ++t.rounds;
    ++depth;
#pragma omp parallel
    {
#pragma omp single
      next_local.assign(static_cast<std::size_t>(omp_get_num_threads()), {});
      auto& local = next_local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
           ++i) {
        const vid_t u = frontier[static_cast<std::size_t>(i)];
        for (const vid_t v : g.neighbors(u)) {
          // Claim unvisited neighbors with CAS on the level array.
          if (atomic_read(&t.level[v]) == kNoVertex &&
              claim(&t.level[v], kNoVertex, depth)) {
            t.parent[v] = u;
            local.push_back(v);
          }
        }
      }
    }
    frontier.clear();
    for (auto& chunk : next_local) {
      frontier.insert(frontier.end(), chunk.begin(), chunk.end());
      t.reached += static_cast<vid_t>(chunk.size());
    }
  }
  return t;
}

bool validate_bfs_tree(const CsrGraph& g, const BfsTree& tree) {
  const vid_t n = g.num_vertices();
  if (tree.parent.size() != n || tree.level.size() != n) return false;
  if (n == 0) return true;
  if (tree.level[tree.root] != 0 || tree.parent[tree.root] != kNoVertex) {
    return false;
  }
  return !parallel_any(n, [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    const vid_t p = tree.parent[v];
    const vid_t lv = tree.level[v];
    if (lv == kNoVertex) return p != kNoVertex;  // unreached: no parent
    if (v != tree.root) {
      if (p == kNoVertex || !g.has_edge(v, p)) return true;
      if (tree.level[p] + 1 != lv) return true;
    }
    // BFS property: no edge skips a level.
    for (const vid_t w : g.neighbors(v)) {
      const vid_t lw = tree.level[w];
      if (lw == kNoVertex) return true;  // reachable neighbor unreached
      const vid_t lo = lv < lw ? lv : lw;
      const vid_t hi = lv < lw ? lw : lv;
      if (hi - lo > 1) return true;
    }
    return false;
  });
}

}  // namespace sbg
