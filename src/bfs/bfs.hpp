// Parallel breadth-first search.
//
// Produces the parent array P(v) and level array L(v) that Step 1 of the
// paper's Algorithm 1 (bridge decomposition) consumes: P(root) = kNoVertex
// stands in for the paper's P(r) = -1, L(root) = 0.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace sbg {

struct BfsTree {
  vid_t root = 0;
  /// Parent in the BFS tree; kNoVertex for the root and unreached vertices.
  std::vector<vid_t> parent;
  /// Distance from root; kNoVertex for unreached vertices.
  std::vector<vid_t> level;
  /// Number of vertices reached (including the root).
  vid_t reached = 0;
  /// Number of frontier expansions (== eccentricity of root + 1).
  vid_t rounds = 0;
};

/// Frontier-based parallel BFS from `root`.
BfsTree bfs(const CsrGraph& g, vid_t root = 0);

/// True iff (parent, level) encode a valid BFS tree of g rooted at
/// tree.root: parent edges exist, levels increase by exactly 1 along parent
/// links, and every edge spans at most one level. For tests.
bool validate_bfs_tree(const CsrGraph& g, const BfsTree& tree);

}  // namespace sbg
