// Fixed-priority greedy MIS [Blelloch et al. 2012] and the sequential
// lexicographically-first oracle. oriented_extend (oriented.cpp) is the
// id-derived-permutation instance of greedy_extend; this file holds the
// seeded variant and the result wrappers.
#include "mis/mis.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace detail_mis {

std::uint64_t greedy_priority(std::uint64_t base, vid_t v) {
  return (mix64(base ^ v) & ~0xffffffffull) | v;
}

vid_t greedy_rounds(const CsrGraph& g, std::vector<MisState>& state,
                    std::uint64_t base,
                    const std::vector<std::uint8_t>* active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(state.size() == n, "state array size mismatch");

  const auto participates = [&](vid_t v) {
    return state[v] == MisState::kUndecided && (!active || (*active)[v]);
  };

  std::vector<vid_t> live;
  live.reserve(n);
  for (vid_t v = 0; v < n; ++v) {
    if (participates(v)) live.push_back(v);
  }

  vid_t rounds = 0;
  std::vector<vid_t> next;
  while (!live.empty()) {
    ++rounds;
    // Join: permutation-local minima. Same round-start snapshot rule as
    // luby_extend: a kIn neighbor of a live vertex joined this very round
    // and still competes.
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      const std::uint64_t pv = greedy_priority(base, v);
      for (const vid_t w : g.neighbors(v)) {
        const bool competed = (!active || (*active)[w]) &&
                              atomic_read(&state[w]) != MisState::kOut;
        if (competed && greedy_priority(base, w) < pv) return;
      }
      atomic_write(&state[v], MisState::kIn);
    });
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      if (state[v] != MisState::kUndecided) return;
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) {
          state[v] = MisState::kOut;
          return;
        }
      }
    });
    next.clear();
    for (const vid_t v : live) {
      if (state[v] == MisState::kUndecided) next.push_back(v);
    }
    live.swap(next);
  }
  return rounds;
}

}  // namespace detail_mis

vid_t greedy_extend(const CsrGraph& g, std::vector<MisState>& state,
                    std::uint64_t seed,
                    const std::vector<std::uint8_t>* active) {
  return detail_mis::greedy_rounds(g, state, mix64(seed ^ 0x6eedull), active);
}

MisResult mis_greedy(const CsrGraph& g, std::uint64_t seed) {
  Timer timer;
  MisResult r;
  r.state.assign(g.num_vertices(), MisState::kUndecided);
  r.rounds = greedy_extend(g, r.state, seed);
  r.size = mis_size(r.state);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

MisResult mis_greedy_seq(const CsrGraph& g) {
  Timer timer;
  MisResult r;
  const vid_t n = g.num_vertices();
  r.state.assign(n, MisState::kUndecided);
  for (vid_t v = 0; v < n; ++v) {
    if (r.state[v] != MisState::kUndecided) continue;
    r.state[v] = MisState::kIn;
    for (const vid_t w : g.neighbors(v)) {
      r.state[w] = MisState::kOut;
    }
  }
  r.rounds = 1;
  r.size = mis_size(r.state);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
