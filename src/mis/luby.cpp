// Algorithm LubyMIS [Luby 1986] — the paper's baseline, implemented as in
// the original: each round every live vertex marks itself with probability
// 1/(2 d(v)) (d = live degree; freshly isolated vertices join outright);
// between adjacent marked vertices the lower-degree one unmarks (ties by
// id); surviving marked vertices join the set and knock their neighbors
// out. Expected O(log n) rounds, but with three neighbor sweeps and a coin
// flip per live vertex per round — this per-round cost is precisely the
// headroom the decomposition-based variants of Section V exploit.
//
// Coins are counter-based — hash(seed, round, vertex) — so runs are
// reproducible under any thread schedule.
#include "mis/mis.hpp"
#include "obs/obs.hpp"
#include "parallel/cancel.hpp"
#include "parallel/atomics.hpp"
#include "parallel/compact.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/rng.hpp"
#include "parallel/scratch.hpp"
#include "parallel/timer.hpp"

namespace sbg {

vid_t luby_extend(const CsrGraph& g, std::vector<MisState>& state,
                  std::uint64_t seed,
                  const std::vector<std::uint8_t>* active) {
  SBG_SPAN("luby_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(state.size() == n, "state array size mismatch");
  const RandomStream coins(seed, /*stream=*/0x3a15b7);

  const auto participates = [&](vid_t v) {
    return state[v] == MisState::kUndecided && (!active || (*active)[v]);
  };

  // All round-loop temporaries live in the thread's scratch arena: the
  // composites call luby_extend twice per solve, and with the arena both
  // calls (and every subsequent solve on this thread) reuse one set of
  // blocks instead of re-mallocing five n-sized vectors.
  Scratch& scratch = Scratch::local();
  Scratch::Region region(scratch);
  std::span<vid_t> live = scratch.take<vid_t>(n);
  std::span<vid_t> next = scratch.take<vid_t>(n);
  std::size_t live_count = pack_index(
      n, [&](std::size_t v) { return participates(static_cast<vid_t>(v)); },
      live);
  std::span<vid_t> live_degree = scratch.take_zero<vid_t>(n);
  std::span<std::uint8_t> marked = scratch.take_zero<std::uint8_t>(n);
  std::span<std::uint8_t> survivor = scratch.take_zero<std::uint8_t>(n);

  vid_t rounds = 0;
  while (live_count > 0) {
    poll_cancellation();
    ++rounds;
    SBG_COUNTER_ADD("luby.rounds", 1);
    SBG_SERIES_APPEND("luby.frontier", live_count);
    // Live degrees first (pure read pass, so the count is schedule
    // independent), then coin flips: mark with probability 1/(2 d_live);
    // vertices whose neighborhood is fully decided join immediately.
    parallel_for_dynamic(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      vid_t d = 0;
      for (const vid_t w : g.neighbors(v)) {
        if (participates(w)) ++d;
      }
      live_degree[v] = d;
    });
    parallel_for(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      const vid_t d = live_degree[v];
      if (d == 0) {
        state[v] = MisState::kIn;
        marked[v] = 0;
        return;
      }
      const std::uint64_t idx = static_cast<std::uint64_t>(rounds) * n + v;
      marked[v] = coins.bits(idx) < (~0ull / 2) / d ? 1 : 0;
    });
    // Conflict resolution between adjacent marked vertices: the lower
    // degree endpoint loses (ties broken by id) — Luby's rule. Decisions
    // read only the round-start `marked` snapshot, so the surviving set is
    // schedule independent: exactly the (degree, id)-local maxima.
    parallel_for_dynamic(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      survivor[v] = 0;
      if (!marked[v]) return;
      const vid_t dv = live_degree[v];
      for (const vid_t w : g.neighbors(v)) {
        if (!participates(w) || !marked[w]) continue;
        const vid_t dw = live_degree[w];
        if (dw > dv || (dw == dv && w > v)) return;
      }
      survivor[v] = 1;
    });
    // Surviving marked vertices join; then neighbors drop out.
    parallel_for(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      if (survivor[v]) state[v] = MisState::kIn;
    });
    parallel_for_dynamic(live_count, [&](std::size_t i) {
      const vid_t v = live[i];
      if (state[v] != MisState::kUndecided) return;
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) {
          state[v] = MisState::kOut;
          return;
        }
      }
    });
    SBG_OBS_ONLY(const std::size_t obs_in =
                     parallel_count(live_count, [&](std::size_t i) {
                       return state[live[i]] == MisState::kIn;
                     });)
    const std::size_t next_count =
        pack(live.first(live_count),
             [&](vid_t v) { return state[v] == MisState::kUndecided; }, next);
    SBG_OBS_ONLY({
      const std::size_t obs_out = live_count - next_count - obs_in;
      SBG_SERIES_APPEND("luby.joined", obs_in);
      SBG_SERIES_APPEND("luby.eliminated", obs_out);
      SBG_COUNTER_ADD("luby.joined_vertices", obs_in);
    })
    std::swap(live, next);
    live_count = next_count;
  }
  return rounds;
}

MisResult mis_luby(const CsrGraph& g, std::uint64_t seed) {
  Timer timer;
  MisResult r;
  r.state.assign(g.num_vertices(), MisState::kUndecided);
  r.rounds = luby_extend(g, r.state, seed);
  r.size = mis_size(r.state);
  r.solve_seconds = r.total_seconds = timer.seconds();
  return r;
}

}  // namespace sbg
