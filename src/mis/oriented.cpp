// Oriented symmetry breaking for bounded-degree graphs — the subroutine
// MIS-Deg2 uses on the degree <= 2 induced subgraph (disjoint paths and
// cycles), standing in for Kothapalli-Pindiproli [21].
//
// The orientation induced by vertex numbers is distilled into one FIXED
// priority per vertex (a hash of the id, tie-broken by the id itself).
// Each round an undecided vertex compares against at most two neighbors
// and joins when it is the local minimum; no per-round coin flips are
// drawn — that is the "power of orientation": the randomness is paid once,
// at id time, and every round afterwards is two comparisons. On paths and
// cycles the fixed-priority greedy eliminates a constant fraction of each
// chain per round, so round counts stay logarithmic in the longest chain.
#include "mis/mis.hpp"
#include "obs/obs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace {

inline std::uint64_t fixed_priority(vid_t v) {
  return (mix64(0x0123456789abcdefull ^ v) & ~0xffffffffull) | v;
}

}  // namespace

vid_t oriented_extend(const CsrGraph& g, std::vector<MisState>& state,
                      const std::vector<std::uint8_t>* active) {
  SBG_SPAN("oriented_extend");
  const vid_t n = g.num_vertices();
  SBG_CHECK(state.size() == n, "state array size mismatch");

  const auto participates = [&](vid_t v) {
    return state[v] == MisState::kUndecided && (!active || (*active)[v]);
  };

  std::vector<vid_t> live;
  live.reserve(n);
  for (vid_t v = 0; v < n; ++v) {
    if (participates(v)) live.push_back(v);
  }

  vid_t rounds = 0;
  std::vector<vid_t> next;
  while (!live.empty()) {
    ++rounds;
    SBG_COUNTER_ADD("oriented.rounds", 1);
    SBG_SERIES_APPEND("oriented.frontier", live.size());
    // Join: fixed-priority local minima (same round-start snapshot rule
    // as luby_extend: kIn neighbors joined this round and still compete).
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      const std::uint64_t pv = fixed_priority(v);
      for (const vid_t w : g.neighbors(v)) {
        const bool competed = (!active || (*active)[w]) &&
                              atomic_read(&state[w]) != MisState::kOut;
        if (competed && fixed_priority(w) < pv) return;
      }
      atomic_write(&state[v], MisState::kIn);
    });
    parallel_for(live.size(), [&](std::size_t i) {
      const vid_t v = live[i];
      if (state[v] != MisState::kUndecided) return;
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) {
          state[v] = MisState::kOut;
          return;
        }
      }
    });
    next.clear();
    SBG_OBS_ONLY(vid_t obs_in = 0;)
    for (const vid_t v : live) {
      if (state[v] == MisState::kUndecided) {
        next.push_back(v);
        continue;
      }
      SBG_OBS_ONLY(if (state[v] == MisState::kIn) ++obs_in;)
    }
    SBG_OBS_ONLY({
      SBG_SERIES_APPEND("oriented.joined", obs_in);
      SBG_COUNTER_ADD("oriented.joined_vertices", obs_in);
    })
    live.swap(next);
  }
  return rounds;
}

}  // namespace sbg
