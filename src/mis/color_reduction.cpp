// Deterministic coloring-reduction MIS for degree <= 2 subgraphs — the
// textbook "small coloring -> MIS" route of Kothapalli-Pindiproli-style
// oriented symmetry breaking: first 3-color the active subgraph (paths and
// cycles) with the deterministic small-palette iteration, then sweep the
// color classes. Each class is an independent set, so the sweep needs no
// tie-breaking at all: class 0 joins wholesale; classes 1 and 2 join unless
// a neighbor already did. Everything after the coloring is exactly three
// constant-work parallel passes.
#include "coloring/coloring.hpp"
#include "mis/mis.hpp"
#include "graph/subgraph.hpp"
#include "parallel/parallel_for.hpp"

namespace sbg {

vid_t color_class_extend(const CsrGraph& g, std::vector<MisState>& state,
                         const std::vector<std::uint8_t>& active) {
  const vid_t n = g.num_vertices();
  SBG_CHECK(state.size() == n, "state array size mismatch");
  SBG_CHECK(active.size() == n, "active mask size mismatch");

  // Participants: undecided active vertices. (Pre-decided vertices keep
  // their state; their neighbors were already knocked out by the caller.)
  std::vector<std::uint8_t> live(n, 0);
  parallel_for(n, [&](std::size_t v) {
    live[v] = active[v] && state[v] == MisState::kUndecided;
  });

  // Deterministic 3-coloring of the live vertices, run directly on G: a
  // live vertex has total degree <= 2 (caller contract: `active` selects a
  // degree <= 2 subgraph), so at most two neighbors ever hold palette
  // colors and a free slot always exists — no subgraph materialization.
  std::vector<std::uint32_t> color(n, kNoColor);
  const vid_t rounds =
      small_palette_extend(g, color, /*palette_base=*/0, /*palette=*/3, live);

  // Class sweeps: for c = 0, 1, 2 — join undecided class-c vertices with
  // no kIn neighbor, then knock out their neighbors. Within one class no
  // two joining vertices are adjacent (same color), so no races matter.
  for (std::uint32_t c = 0; c < 3; ++c) {
    parallel_for(n, [&](std::size_t i) {
      const vid_t v = static_cast<vid_t>(i);
      if (!live[v] || state[v] != MisState::kUndecided || color[v] != c) {
        return;
      }
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) return;
      }
      state[v] = MisState::kIn;
    });
    parallel_for(n, [&](std::size_t i) {
      const vid_t v = static_cast<vid_t>(i);
      if (!live[v] || state[v] != MisState::kUndecided) return;
      for (const vid_t w : g.neighbors(v)) {
        if (state[w] == MisState::kIn) {
          state[v] = MisState::kOut;
          return;
        }
      }
    });
  }
  return rounds + 3;
}

}  // namespace sbg
