// Maximal Independent Set: baselines and decomposition-based composites
// (paper Section V).
//
// Solvers are extenders over a shared, global, n-sized state array:
// kUndecided vertices participate; kIn/kOut vertices are fixed. An optional
// active mask restricts participation (inactive vertices behave as absent),
// which is how the composites solve "the sparser side first" (Section V-B)
// without renumbering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bridge.hpp"
#include "graph/csr.hpp"

namespace sbg {

enum class MisState : std::uint8_t {
  kUndecided = 0,
  kIn = 1,   ///< in the independent set
  kOut = 2,  ///< has a neighbor in the set
};

struct MisResult {
  std::vector<MisState> state;
  std::size_t size = 0;  ///< |I|
  vid_t rounds = 0;      ///< total solver rounds across phases
  double total_seconds = 0.0;
  double decompose_seconds = 0.0;  ///< 0 for the baseline
  double solve_seconds = 0.0;
};

// ------------------------------------------------------------- extenders --
/// Algorithm LubyMIS: per-round random priorities; local minima join the
/// set and knock their neighbors out. Expected O(log n) rounds.
vid_t luby_extend(const CsrGraph& g, std::vector<MisState>& state,
                  std::uint64_t seed,
                  const std::vector<std::uint8_t>* active = nullptr);

/// Oriented symmetry breaking for bounded-degree graphs (the role of
/// Kothapalli-Pindiproli [21] in Algorithm MIS-Deg2): vertex ids induce an
/// acyclic orientation; the FIXED priorities derived from them replace
/// Luby's per-round coin flips, so each round is two ≤2-neighbor
/// comparisons and the round count stays logarithmic on the path/cycle
/// graphs DEGk (k=2) produces.
vid_t oriented_extend(const CsrGraph& g, std::vector<MisState>& state,
                      const std::vector<std::uint8_t>* active = nullptr);

/// Fixed-priority greedy MIS (Blelloch et al. [6]): one random permutation
/// drawn up front (counter-hashed from `seed`); every round the permutation-
/// local minima join. "Greedy sequential ... is parallel on average":
/// O(log n) rounds w.h.p. with no per-round coins. oriented_extend is this
/// with the id-derived permutation.
vid_t greedy_extend(const CsrGraph& g, std::vector<MisState>& state,
                    std::uint64_t seed,
                    const std::vector<std::uint8_t>* active = nullptr);

/// Deterministic coloring-reduction MIS for bounded-degree subgraphs (the
/// other [21]-style route): 3-color the degree <= 2 active subgraph with
/// the small-palette machinery, then sweep the color classes — class 0
/// joins outright, later classes join unless a neighbor already did.
/// Exactly 3 constant-work parallel sweeps after the coloring settles.
vid_t color_class_extend(const CsrGraph& g, std::vector<MisState>& state,
                         const std::vector<std::uint8_t>& active);

// -------------------------------------------------------------- baseline --
MisResult mis_luby(const CsrGraph& g, std::uint64_t seed = 42);

/// Blelloch-style greedy MIS as a standalone baseline.
MisResult mis_greedy(const CsrGraph& g, std::uint64_t seed = 42);

/// Sequential lexicographically-first MIS — the test oracle.
MisResult mis_greedy_seq(const CsrGraph& g);

// ------------------------------------------------- decomposition variants --
/// Algorithm 10 (MIS-Bridge): solve the sparser of {components minus
/// bridge endpoints, bridge-endpoint subgraph} first, eliminate its closed
/// neighborhood, finish with LubyMIS on the remainder.
MisResult mis_bridge(const CsrGraph& g, std::uint64_t seed = 42,
                     BridgeAlgo bridge_algo = BridgeAlgo::kNaiveWalk);

/// Algorithm 11 (MIS-Rand): same two-phase scheme over the RAND
/// decomposition (intra side = vertices with no cross edges).
/// k = 0 selects the paper's heuristic partition count.
MisResult mis_rand(const CsrGraph& g, vid_t k = 0, std::uint64_t seed = 42);

/// Algorithm 12 (MIS-Deg2): oriented MIS on the degree <= k induced
/// subgraph (paths and cycles for k = 2), eliminate its closed
/// neighborhood, finish with LubyMIS.
MisResult mis_degk(const CsrGraph& g, vid_t k = 2, std::uint64_t seed = 42);

// ----------------------------------------------------------- verification --
/// Boolean convenience wrapper over check::check_mis (src/check/ is the
/// single source of truth for validity). `error` (if non-null) receives the
/// structured first-violation message.
bool verify_mis(const CsrGraph& g, const std::vector<MisState>& state,
                std::string* error = nullptr);

std::size_t mis_size(const std::vector<MisState>& state);

}  // namespace sbg
