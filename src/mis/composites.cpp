// Decomposition-based MIS (paper Algorithms 10, 11, 12).
//
// Shared scheme: pick a vertex side S of the decomposition, compute an MIS
// of G[S] (solver on the decomposition subgraph, masked to S), eliminate
// the closed neighborhood of that set from G, and finish with LubyMIS on
// whatever is left. MIS-Bridge/MIS-Rand order the two sides by average
// degree — "computing an MIS on the sparser of the graphs ... is beneficial
// in practice" (Section V-B).
#include "mis/mis.hpp"

#include "check/check.hpp"
#include "core/degk.hpp"
#include "core/rand.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/timer.hpp"

namespace sbg {

namespace {

/// Mark every G-neighbor of a kIn vertex as kOut.
void eliminate_closed_neighborhood(const CsrGraph& g,
                                   std::vector<MisState>& state) {
  parallel_for_dynamic(g.num_vertices(), [&](std::size_t i) {
    const vid_t v = static_cast<vid_t>(i);
    if (state[v] != MisState::kUndecided) return;
    for (const vid_t w : g.neighbors(v)) {
      if (state[w] == MisState::kIn) {
        state[v] = MisState::kOut;
        return;
      }
    }
  });
}

/// Two-phase composite: MIS of G[side] via luby on `side_graph`, then
/// LubyMIS on the remainder of G.
MisResult two_phase(const CsrGraph& g, const CsrGraph& side_graph,
                    const std::vector<std::uint8_t>& side,
                    double decompose_seconds, std::uint64_t seed) {
  Timer timer;
  PhaseTimer phases;
  MisResult r;
  r.decompose_seconds = decompose_seconds;
  r.state.assign(g.num_vertices(), MisState::kUndecided);

  {
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += luby_extend(side_graph, r.state, seed, &side);
  }
  {
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    eliminate_closed_neighborhood(g, r.state);
    r.rounds += luby_extend(g, r.state, seed + 1);
  }

  r.size = mis_size(r.state);
  r.total_seconds = timer.seconds() + decompose_seconds;
  r.solve_seconds = phases.total_seconds();
  return r;
}

}  // namespace

MisResult mis_bridge(const CsrGraph& g, std::uint64_t seed,
                     BridgeAlgo bridge_algo) {
  SBG_SPAN("mis_bridge");
  const vid_t n = g.num_vertices();
  const BridgeDecomposition d = decompose_bridge(g, bridge_algo);

  // Side A: component interiors (H_i = G_i minus bridge endpoints), solved
  // on g_components. Side B: the bridge endpoints, solved on G itself
  // (G[V_B] includes non-bridge edges between bridge endpoints).
  std::vector<std::uint8_t> interior(n), endpoints(n);
  parallel_for(n, [&](std::size_t v) {
    endpoints[v] = d.is_bridge_vertex[v];
    interior[v] = !d.is_bridge_vertex[v];
  });

  const std::size_t n_end = parallel_count(
      n, [&](std::size_t v) { return endpoints[v] != 0; });
  // Sparser side first: compare average degrees of the two sides.
  const double deg_interior =
      static_cast<double>(d.g_components.num_arcs()) /
      std::max<double>(1.0, static_cast<double>(n - n_end));
  const double deg_endpoints =
      2.0 * static_cast<double>(d.bridges.size()) /
      std::max<double>(1.0, static_cast<double>(n_end));

  if (deg_interior <= deg_endpoints) {
    return two_phase(g, d.g_components, interior, d.decompose_seconds, seed);
  }
  return two_phase(g, g, endpoints, d.decompose_seconds, seed);
}

MisResult mis_rand(const CsrGraph& g, vid_t k, std::uint64_t seed) {
  SBG_SPAN("mis_rand");
  if (k == 0) k = rand_partition_heuristic(g);
  const RandDecomposition d = decompose_rand(g, k, seed);
  const vid_t n = g.num_vertices();

  // Side A: H = vertices untouched by cross edges, solved on g_intra.
  // Side B: the cross-edge endpoints, solved on G.
  std::vector<std::uint8_t> intra_only(n), cross_touched(n);
  parallel_for(n, [&](std::size_t v) {
    const bool touched = d.g_cross.degree(static_cast<vid_t>(v)) > 0;
    cross_touched[v] = touched;
    intra_only[v] = !touched;
  });

  if (d.g_intra.num_edges() <= d.g_cross.num_edges()) {
    return two_phase(g, d.g_intra, intra_only, d.decompose_seconds, seed);
  }
  return two_phase(g, g, cross_touched, d.decompose_seconds, seed);
}

MisResult mis_degk(const CsrGraph& g, vid_t k, std::uint64_t seed) {
  SBG_SPAN("mis_degk");
  Timer timer;
  PhaseTimer phases;
  // Classification only ("a simple computation") — G_L is reached by
  // masking the oriented solver to the low vertices of G itself.
  const DegkDecomposition d = decompose_degk(g, k, /*pieces=*/0);
  const vid_t n = g.num_vertices();

  MisResult r;
  r.decompose_seconds = d.decompose_seconds;
  r.state.assign(n, MisState::kUndecided);

  std::vector<std::uint8_t> low(n);
  parallel_for(n, [&](std::size_t v) { low[v] = !d.is_high[v]; });

  {
    // Phase 1: oriented MIS on the degree <= k induced subgraph (paths and
    // cycles when k = 2) — no Luby coin flips needed there.
    SBG_SPAN("solve");
    ScopedPhase phase(phases, "solve");
    r.rounds += oriented_extend(g, r.state, &low);
  }
  {
    // Eliminate N[I_C] from G, then LubyMIS on what remains.
    SBG_SPAN("stitch");
    ScopedPhase phase(phases, "stitch");
    eliminate_closed_neighborhood(g, r.state);
    r.rounds += luby_extend(g, r.state, seed);
  }

  r.size = mis_size(r.state);
  r.total_seconds = timer.seconds();
  r.solve_seconds = phases.total_seconds();
  return r;
}

bool verify_mis(const CsrGraph& g, const std::vector<MisState>& state,
                std::string* error) {
  const check::MisReport rep = check::check_mis(g, state);
  if (!rep.result && error) *error = rep.result.message();
  return rep.result.ok;
}

std::size_t mis_size(const std::vector<MisState>& state) {
  return parallel_count(state.size(), [&](std::size_t v) {
    return state[v] == MisState::kIn;
  });
}

}  // namespace sbg
