// sbg::sched — concurrent batch execution of independent solver jobs.
//
// The paper's Table I is a (problem × decomposition-variant × dataset)
// matrix; the ROADMAP north star is a service that answers many such
// requests at once. This engine runs J independent jobs from one work
// queue over a partitioned thread budget: each worker is a plain
// std::thread (its own OpenMP contention group), capped at
// per_job_threads via omp_set_num_threads in worker scope, so total
// OpenMP threads = jobs × per_job_threads with no nested-parallelism
// games. Per-job deadlines ride on the cooperative cancellation polls in
// the solver round loops (parallel/cancel.hpp); a throwing, cancelled, or
// oracle-failing job is recorded in the batch report and the batch
// continues. Determinism carries over for the seeded solvers: they are
// pure functions of (graph, seed) with counter-based randomness, so a
// batch run's per-job result bytes are identical to a sequential sweep's —
// the engine hashes each solution array so reports can prove it. The
// speculative colorers (VB/EB/spec) intentionally race on the color array,
// so their results are oracle-valid but schedule-dependent; use
// schedule_deterministic() to know which jobs admit hash comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coloring/coloring.hpp"
#include "dyn/session.hpp"
#include "graph/csr.hpp"
#include "matching/matching.hpp"
#include "mis/mis.hpp"

namespace sbg::sched {

enum class Problem { kMM, kColor, kMis };
const char* to_string(Problem p);

/// JobSpec::variant value that defers the decomposition choice to the
/// sbg::tune selector at prepare time, per (graph, problem).
inline constexpr const char* kAutoVariant = "auto";

/// One unit of batch work: run `variant` of `problem` on `graph` with
/// `seed`. Variants are the names registered in check/solvers.hpp, so
/// every solver and composite the library ships is addressable — plus
/// kAutoVariant ("auto"), resolved by prepare_job via sbg::tune.
struct JobSpec {
  std::string name;        ///< report key, e.g. "c-73/mm/rand-gm"
  std::string graph_name;
  std::shared_ptr<const CsrGraph> graph;
  Problem problem = Problem::kMM;
  std::string variant;
  std::uint64_t seed = 42;
  /// Testing hook: throw instead of solving, to exercise failure isolation.
  bool inject_failure = false;
};

enum class JobStatus {
  kOk,
  kFailed,     ///< solver threw, oracle rejected, or variant unknown
  kCancelled,  ///< deadline exceeded / cancellation observed
};
const char* to_string(JobStatus s);

struct JobResult {
  JobStatus status = JobStatus::kFailed;
  std::string error;              ///< empty on kOk
  int worker = -1;                ///< worker thread that ran the job
  double seconds = 0.0;
  vid_t rounds = 0;
  std::uint64_t value = 0;        ///< |M| / palette span / |I|
  std::uint64_t result_hash = 0;  ///< hash of the solution array bytes
  /// The concrete registry variant that ran: spec.variant for explicit
  /// jobs, the tune selector's pick for "auto" jobs (empty if the job
  /// failed before resolution).
  std::string resolved_variant;
};

struct BatchOptions {
  int jobs = 2;             ///< concurrent workers
  int per_job_threads = 1;  ///< OpenMP threads inside each job
  double deadline_ms = 0;   ///< per-job deadline; <= 0 disables
  bool verify = true;       ///< gate each result on the check oracles
};

struct BatchReport {
  std::vector<JobSpec> specs;  ///< echoed; results[i] belongs to specs[i]
  std::vector<JobResult> results;
  BatchOptions options;
  double wall_seconds = 0.0;

  int count(JobStatus s) const;

  /// One aggregated JSON document: batch options, totals, one object per
  /// job, and the process-global obs report as the "obs" member.
  std::string to_json() const;
};

/// Whether `variant` of `problem` produces byte-identical results under
/// every thread count and interleaving. True for the seeded solvers (all
/// MM and MIS variants, JP coloring); false for the speculative colorers
/// (VB/EB/spec and their composites), whose in-round races make the
/// result valid but schedule-dependent. Hash-compare batch results
/// against sequential replays only when this holds.
bool schedule_deterministic(Problem problem, const std::string& variant);

// ----------------------------------------------------------------------
// The prepare / execute / verify pipeline. run_job composes the three
// stages; they are public so callers with different lifecycles (sbg_serve,
// benches, the auto fuzz family) can resolve once and execute many times,
// or execute without the oracle and verify later.

/// A JobSpec whose variant has been resolved to a concrete registry name.
struct PreparedJob {
  JobSpec spec;              ///< variant is never kAutoVariant here
  bool auto_resolved = false;
  std::string auto_reason;   ///< tune selector rationale when auto_resolved
};

/// Resolve spec's variant. kAutoVariant consults the sbg::tune selector
/// per (graph, problem) — every call re-resolves, so one batch mixing
/// graphs gets a per-graph decision; any other variant passes through
/// unchanged. Throws InputError when an auto job has no graph.
PreparedJob prepare_job(const JobSpec& spec);

/// The solution arrays a job produced; only the member matching the job's
/// problem is populated.
struct JobSolution {
  MatchResult mm;
  ColorResult color;
  MisResult mis;
};

/// Solve a prepared job in the calling thread under the caller's current
/// OpenMP thread count, with its own cooperative-cancellation scope.
/// Never throws; failures land in the result. Does NOT oracle-gate —
/// that is verify_job's stage. `seconds` covers the solve only.
JobResult execute_job(const PreparedJob& job, JobSolution& sol,
                      double deadline_ms = 0);

/// Oracle-check sol against the job's problem. Returns "" when the
/// solution passes, else the first-violation message.
std::string verify_job(const PreparedJob& job, const JobSolution& sol);

/// Run one job in the calling thread under the caller's current OpenMP
/// thread count: prepare (auto resolution) -> execute -> verify, then
/// record the run into the sbg::tune telemetry store on success. Never
/// throws: every failure mode lands in the result.
JobResult run_job(const JobSpec& spec, double deadline_ms = 0,
                  bool verify = true);

// ------------------------------------------------------------------------
// Streaming update jobs (src/dyn). An update job is one batch applied to a
// live dyn::Session: apply + incremental MM/coloring/MIS repair, optionally
// oracle-verified against the materialized post-batch graph. It rides the
// same cooperative-cancellation scope as solve jobs, so deadlines land in
// the repair round loops and map to kCancelled.

/// One update batch against a live session.
struct UpdateJobSpec {
  std::string name;        ///< report key, e.g. "c-73/updates/42"
  std::string graph_name;  ///< registry name the session belongs to
  std::shared_ptr<dyn::Session> session;
  dyn::UpdateBatch batch;
  /// Oracle-check every repaired solution against the materialized graph.
  bool verify = true;
};

struct UpdateJobResult {
  JobStatus status = JobStatus::kFailed;
  std::string error;  ///< empty on kOk
  double seconds = 0.0;
  /// Populated on kOk; on a verify failure it still carries the batch's
  /// structural effect and the offending oracle message is in `error`.
  dyn::UpdateOutcome outcome;
};

/// Run one update job in the calling thread with its own cancellation
/// scope. Never throws; an oracle rejection is a kFailed result (the
/// session keeps its repaired state either way — callers decide whether
/// to drop the session).
UpdateJobResult run_update_job(const UpdateJobSpec& spec,
                               double deadline_ms = 0);

/// Run `specs` concurrently. Must be called from serial code (the workers
/// it spawns are their own OpenMP contention groups).
BatchReport run_batch(const std::vector<JobSpec>& specs,
                      const BatchOptions& opt = {});

/// The Table-I job matrix over `graphs`: for each graph, {MM, COLOR, MIS}
/// × {baseline, BRIDGE, RAND, DEGk} under the CPU engines.
std::vector<JobSpec> table1_matrix(
    const std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>>&
        graphs,
    std::uint64_t seed = 42);

}  // namespace sbg::sched
