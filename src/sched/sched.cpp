#include "sched/sched.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "check/check.hpp"
#include "check/solvers.hpp"
#include "ingest/cache.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_env.hpp"
#include "parallel/timer.hpp"

namespace sbg::sched {

namespace {

template <typename Variants>
auto find_variant(const Variants& variants, const std::string& name)
    -> decltype(&variants.front()) {
  for (const auto& v : variants) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

std::uint64_t hash_array(const void* data, std::size_t bytes,
                         std::uint64_t seed) {
  return ingest::hash_bytes(data, bytes, seed);
}

/// Dispatch spec to its registered variant, oracle-gate the result, and
/// fill the solution-dependent JobResult fields. Throws on oracle failure
/// or unknown variant; run_job translates every throw into a status.
void solve_into(const JobSpec& spec, bool verify, JobResult& out) {
  const CsrGraph& g = *spec.graph;
  switch (spec.problem) {
    case Problem::kMM: {
      const auto* v = find_variant(check::matching_variants(), spec.variant);
      if (v == nullptr) throw InputError("unknown mm variant: " + spec.variant);
      const MatchResult r = v->run(g, spec.seed);
      if (verify) {
        const check::MatchingReport rep = check::check_matching(g, r.mate);
        if (!rep.result.ok) throw InputError("oracle: " + rep.result.message());
      }
      out.rounds = r.rounds;
      out.value = r.cardinality;
      out.result_hash = hash_array(r.mate.data(),
                                   r.mate.size() * sizeof(vid_t), spec.seed);
      return;
    }
    case Problem::kColor: {
      const auto* v = find_variant(check::coloring_variants(), spec.variant);
      if (v == nullptr) {
        throw InputError("unknown color variant: " + spec.variant);
      }
      const ColorResult r = v->run(g, spec.seed);
      if (verify) {
        const check::ColoringReport rep = check::check_coloring(g, r.color);
        if (!rep.result.ok) throw InputError("oracle: " + rep.result.message());
      }
      out.rounds = r.rounds;
      out.value = r.num_colors;
      out.result_hash = hash_array(
          r.color.data(), r.color.size() * sizeof(std::uint32_t), spec.seed);
      return;
    }
    case Problem::kMis: {
      const auto* v = find_variant(check::mis_variants(), spec.variant);
      if (v == nullptr) {
        throw InputError("unknown mis variant: " + spec.variant);
      }
      const MisResult r = v->run(g, spec.seed);
      if (verify) {
        const check::MisReport rep = check::check_mis(g, r.state);
        if (!rep.result.ok) throw InputError("oracle: " + rep.result.message());
      }
      out.rounds = r.rounds;
      out.value = r.size;
      out.result_hash = hash_array(
          r.state.data(), r.state.size() * sizeof(MisState), spec.seed);
      return;
    }
  }
  throw InputError("unknown problem");
}

void append_job_json(std::string& out, const JobSpec& spec,
                     const JobResult& res) {
  using obs::append_json_number;
  using obs::append_json_string;
  out += "{\"name\":";
  append_json_string(out, spec.name);
  out += ",\"graph\":";
  append_json_string(out, spec.graph_name);
  out += ",\"problem\":";
  append_json_string(out, to_string(spec.problem));
  out += ",\"variant\":";
  append_json_string(out, spec.variant);
  out += ",\"seed\":" + std::to_string(spec.seed);
  out += ",\"status\":";
  append_json_string(out, to_string(res.status));
  out += ",\"worker\":" + std::to_string(res.worker);
  out += ",\"seconds\":";
  append_json_number(out, res.seconds);
  out += ",\"rounds\":" + std::to_string(res.rounds);
  out += ",\"value\":" + std::to_string(res.value);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(res.result_hash));
  out += ",\"result_hash\":";
  append_json_string(out, hex);
  out += ",\"error\":";
  append_json_string(out, res.error);
  out += '}';
}

}  // namespace

const char* to_string(Problem p) {
  switch (p) {
    case Problem::kMM: return "mm";
    case Problem::kColor: return "color";
    case Problem::kMis: return "mis";
  }
  return "?";
}

bool schedule_deterministic(Problem problem, const std::string& variant) {
  // MM (proposal rounds with barriers, seeded weights) and MIS
  // (counter-based coins) solvers are schedule-independent. Coloring is
  // deterministic only for the Jones-Plassmann family: VB/EB/spec
  // speculate with racy color reads by design, so any variant whose solve
  // phase is not JP inherits their schedule dependence.
  if (problem != Problem::kColor) return true;
  return variant.rfind("jp", 0) == 0;
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

int BatchReport::count(JobStatus s) const {
  int n = 0;
  for (const JobResult& r : results) n += r.status == s ? 1 : 0;
  return n;
}

std::string BatchReport::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"sbg_batch_version\":1,\"options\":{\"jobs\":" +
         std::to_string(options.jobs) +
         ",\"per_job_threads\":" + std::to_string(options.per_job_threads) +
         ",\"deadline_ms\":";
  obs::append_json_number(out, options.deadline_ms);
  out += ",\"verify\":";
  out += options.verify ? "true" : "false";
  out += "},\"wall_seconds\":";
  obs::append_json_number(out, wall_seconds);
  out += ",\"totals\":{\"jobs\":" + std::to_string(results.size()) +
         ",\"ok\":" + std::to_string(count(JobStatus::kOk)) +
         ",\"failed\":" + std::to_string(count(JobStatus::kFailed)) +
         ",\"cancelled\":" + std::to_string(count(JobStatus::kCancelled)) +
         "},\"jobs\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) out += ',';
    append_job_json(out, specs[i], results[i]);
  }
  // The process-global obs snapshot: counters/series from all jobs
  // aggregate here (the registry is process-wide by design).
  out += "],\"obs\":";
  out += obs::report_json({{"tool", "sbg_batch"}});
  out += '}';
  return out;
}

JobResult run_job(const JobSpec& spec, double deadline_ms, bool verify) {
  JobResult res;
  Timer timer;
  CancelToken token;
  token.set_deadline_ms(deadline_ms);
  ScopedCancel install(&token);
  try {
    if (spec.inject_failure) {
      SBG_TRACE_INSTANT("sched.injected_failure");
      throw InputError("injected failure");
    }
    // One span per job: on the exported timeline each worker's track shows
    // its jobs back to back; the perf scope banks the job's cycle/
    // instruction/LLC deltas under "perf.sched.job.".
    SBG_SPAN(spec.name);
    SBG_SPAN_PERF("sched.job");
    // First poll before any solving: an already-expired deadline cancels
    // even jobs that would finish in one round.
    poll_cancellation();
    solve_into(spec, verify, res);
    res.status = JobStatus::kOk;
    SBG_COUNTER_ADD("sched.jobs_ok", 1);
  } catch (const JobCancelled& e) {
    res.status = JobStatus::kCancelled;
    res.error = e.what();
    SBG_COUNTER_ADD("sched.jobs_cancelled", 1);
  } catch (const std::exception& e) {
    res.status = JobStatus::kFailed;
    res.error = e.what();
    SBG_COUNTER_ADD("sched.jobs_failed", 1);
  }
  res.seconds = timer.seconds();
  return res;
}

BatchReport run_batch(const std::vector<JobSpec>& specs,
                      const BatchOptions& opt) {
  SBG_SPAN("sched.batch");
  BatchReport report;
  report.specs = specs;
  report.options = opt;
  report.results.resize(specs.size());

  const int workers =
      std::max(1, std::min<int>(opt.jobs, static_cast<int>(specs.size())));
  std::atomic<std::size_t> next{0};
  Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      // Each std::thread is its own OpenMP contention group: this caps the
      // team of every parallel region THIS worker's jobs open, without
      // touching the other workers or the caller.
      set_num_threads(std::max(1, opt.per_job_threads));
      SBG_TRACE_THREAD_NAME("sched-worker-" + std::to_string(w));
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) break;
        report.results[i] = run_job(specs[i], opt.deadline_ms, opt.verify);
        report.results[i].worker = w;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  report.wall_seconds = timer.seconds();
  SBG_COUNTER_ADD("sched.batches", 1);
  SBG_GAUGE_SET("sched.last_batch_wall_seconds", report.wall_seconds);
  return report;
}

std::vector<JobSpec> table1_matrix(
    const std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>>&
        graphs,
    std::uint64_t seed) {
  // The paper's Table I: per problem, the baseline engine plus the three
  // decomposition composites under that engine.
  static constexpr const char* kMm[] = {"gm", "bridge-gm", "rand-gm",
                                        "degk-gm"};
  static constexpr const char* kColor[] = {"vb", "bridge-vb", "rand-vb",
                                           "degk-vb"};
  static constexpr const char* kMis[] = {"luby", "bridge", "rand", "degk2"};
  std::vector<JobSpec> specs;
  for (const auto& [gname, graph] : graphs) {
    const auto add = [&](Problem p, const char* variant) {
      JobSpec s;
      s.graph_name = gname;
      s.graph = graph;
      s.problem = p;
      s.variant = variant;
      s.seed = seed;
      s.name = gname + "/" + to_string(p) + "/" + variant;
      specs.push_back(std::move(s));
    };
    for (const char* v : kMm) add(Problem::kMM, v);
    for (const char* v : kColor) add(Problem::kColor, v);
    for (const char* v : kMis) add(Problem::kMis, v);
  }
  return specs;
}

}  // namespace sbg::sched
