#include "sched/sched.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "check/check.hpp"
#include "check/solvers.hpp"
#include "ingest/cache.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_env.hpp"
#include "parallel/timer.hpp"
#include "tune/tune.hpp"

namespace sbg::sched {

namespace {

template <typename Variants>
auto find_variant(const Variants& variants, const std::string& name)
    -> decltype(&variants.front()) {
  for (const auto& v : variants) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

std::uint64_t hash_array(const void* data, std::size_t bytes,
                         std::uint64_t seed) {
  return ingest::hash_bytes(data, bytes, seed);
}

/// Dispatch spec to its registered variant and fill the solution plus the
/// solution-dependent JobResult fields. No oracle here — that is
/// verify_job's stage. Throws on unknown variant; execute_job translates
/// every throw into a status.
void solve_into(const JobSpec& spec, JobSolution& sol, JobResult& out) {
  const CsrGraph& g = *spec.graph;
  switch (spec.problem) {
    case Problem::kMM: {
      const auto* v = find_variant(check::matching_variants(), spec.variant);
      if (v == nullptr) throw InputError("unknown mm variant: " + spec.variant);
      sol.mm = v->run(g, spec.seed);
      out.rounds = sol.mm.rounds;
      out.value = sol.mm.cardinality;
      out.result_hash = hash_array(
          sol.mm.mate.data(), sol.mm.mate.size() * sizeof(vid_t), spec.seed);
      return;
    }
    case Problem::kColor: {
      const auto* v = find_variant(check::coloring_variants(), spec.variant);
      if (v == nullptr) {
        throw InputError("unknown color variant: " + spec.variant);
      }
      sol.color = v->run(g, spec.seed);
      out.rounds = sol.color.rounds;
      out.value = sol.color.num_colors;
      out.result_hash =
          hash_array(sol.color.color.data(),
                     sol.color.color.size() * sizeof(std::uint32_t), spec.seed);
      return;
    }
    case Problem::kMis: {
      const auto* v = find_variant(check::mis_variants(), spec.variant);
      if (v == nullptr) {
        throw InputError("unknown mis variant: " + spec.variant);
      }
      sol.mis = v->run(g, spec.seed);
      out.rounds = sol.mis.rounds;
      out.value = sol.mis.size;
      out.result_hash = hash_array(sol.mis.state.data(),
                                   sol.mis.state.size() * sizeof(MisState),
                                   spec.seed);
      return;
    }
  }
  throw InputError("unknown problem");
}

void append_job_json(std::string& out, const JobSpec& spec,
                     const JobResult& res) {
  using obs::append_json_number;
  using obs::append_json_string;
  out += "{\"name\":";
  append_json_string(out, spec.name);
  out += ",\"graph\":";
  append_json_string(out, spec.graph_name);
  out += ",\"problem\":";
  append_json_string(out, to_string(spec.problem));
  out += ",\"variant\":";
  append_json_string(out, spec.variant);
  out += ",\"resolved_variant\":";
  append_json_string(out, res.resolved_variant);
  out += ",\"seed\":" + std::to_string(spec.seed);
  out += ",\"status\":";
  append_json_string(out, to_string(res.status));
  out += ",\"worker\":" + std::to_string(res.worker);
  out += ",\"seconds\":";
  append_json_number(out, res.seconds);
  out += ",\"rounds\":" + std::to_string(res.rounds);
  out += ",\"value\":" + std::to_string(res.value);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(res.result_hash));
  out += ",\"result_hash\":";
  append_json_string(out, hex);
  out += ",\"error\":";
  append_json_string(out, res.error);
  out += '}';
}

}  // namespace

const char* to_string(Problem p) {
  switch (p) {
    case Problem::kMM: return "mm";
    case Problem::kColor: return "color";
    case Problem::kMis: return "mis";
  }
  return "?";
}

bool schedule_deterministic(Problem problem, const std::string& variant) {
  // MM (proposal rounds with barriers, seeded weights) and MIS
  // (counter-based coins) solvers are schedule-independent. Coloring is
  // deterministic only for the Jones-Plassmann family: VB/EB/spec
  // speculate with racy color reads by design, so any variant whose solve
  // phase is not JP inherits their schedule dependence.
  if (problem != Problem::kColor) return true;
  return variant.rfind("jp", 0) == 0;
}

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

int BatchReport::count(JobStatus s) const {
  int n = 0;
  for (const JobResult& r : results) n += r.status == s ? 1 : 0;
  return n;
}

std::string BatchReport::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"sbg_batch_version\":1,\"options\":{\"jobs\":" +
         std::to_string(options.jobs) +
         ",\"per_job_threads\":" + std::to_string(options.per_job_threads) +
         ",\"deadline_ms\":";
  obs::append_json_number(out, options.deadline_ms);
  out += ",\"verify\":";
  out += options.verify ? "true" : "false";
  out += "},\"wall_seconds\":";
  obs::append_json_number(out, wall_seconds);
  out += ",\"totals\":{\"jobs\":" + std::to_string(results.size()) +
         ",\"ok\":" + std::to_string(count(JobStatus::kOk)) +
         ",\"failed\":" + std::to_string(count(JobStatus::kFailed)) +
         ",\"cancelled\":" + std::to_string(count(JobStatus::kCancelled)) +
         "},\"jobs\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) out += ',';
    append_job_json(out, specs[i], results[i]);
  }
  // The process-global obs snapshot: counters/series from all jobs
  // aggregate here (the registry is process-wide by design).
  out += "],\"obs\":";
  out += obs::report_json({{"tool", "sbg_batch"}});
  out += '}';
  return out;
}

PreparedJob prepare_job(const JobSpec& spec) {
  PreparedJob prep;
  prep.spec = spec;
  if (spec.variant == kAutoVariant) {
    if (!spec.graph) throw InputError("auto variant needs a graph");
    // Re-resolved on every call: a batch mixing graphs and problems gets a
    // fresh per-(graph, problem) decision, and each finished run sharpens
    // the next one's telemetry.
    const tune::Choice choice = tune::choose_for_graph(
        *spec.graph, spec.problem,
        tune::graph_key(spec.graph_name, *spec.graph));
    prep.spec.variant = choice.variant;
    prep.auto_resolved = true;
    prep.auto_reason = choice.reason;
    SBG_COUNTER_ADD("sched.auto_resolved", 1);
  }
  return prep;
}

JobResult execute_job(const PreparedJob& job, JobSolution& sol,
                      double deadline_ms) {
  const JobSpec& spec = job.spec;
  JobResult res;
  res.resolved_variant = spec.variant;
  Timer timer;
  CancelToken token;
  token.set_deadline_ms(deadline_ms);
  ScopedCancel install(&token);
  try {
    if (spec.inject_failure) {
      SBG_TRACE_INSTANT("sched.injected_failure");
      throw InputError("injected failure");
    }
    // One span per job: on the exported timeline each worker's track shows
    // its jobs back to back; the perf scope banks the job's cycle/
    // instruction/LLC deltas under "perf.sched.job.".
    SBG_SPAN(spec.name);
    SBG_SPAN_PERF("sched.job");
    // First poll before any solving: an already-expired deadline cancels
    // even jobs that would finish in one round.
    poll_cancellation();
    solve_into(spec, sol, res);
    res.status = JobStatus::kOk;
  } catch (const JobCancelled& e) {
    res.status = JobStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res.status = JobStatus::kFailed;
    res.error = e.what();
  }
  res.seconds = timer.seconds();
  return res;
}

std::string verify_job(const PreparedJob& job, const JobSolution& sol) {
  const CsrGraph& g = *job.spec.graph;
  switch (job.spec.problem) {
    case Problem::kMM: {
      const check::MatchingReport rep = check::check_matching(g, sol.mm.mate);
      return rep.result.ok ? "" : "oracle: " + rep.result.message();
    }
    case Problem::kColor: {
      const check::ColoringReport rep =
          check::check_coloring(g, sol.color.color);
      return rep.result.ok ? "" : "oracle: " + rep.result.message();
    }
    case Problem::kMis: {
      const check::MisReport rep = check::check_mis(g, sol.mis.state);
      return rep.result.ok ? "" : "oracle: " + rep.result.message();
    }
  }
  return "oracle: unknown problem";
}

JobResult run_job(const JobSpec& spec, double deadline_ms, bool verify) {
  JobResult res;
  Timer timer;
  PreparedJob prep;
  bool prepared = false;
  try {
    prep = prepare_job(spec);
    prepared = true;
  } catch (const std::exception& e) {
    res.status = JobStatus::kFailed;
    res.error = e.what();
  }
  if (prepared) {
    JobSolution sol;
    res = execute_job(prep, sol, deadline_ms);
    if (res.status == JobStatus::kOk && verify) {
      const std::string err = verify_job(prep, sol);
      if (!err.empty()) {
        res.status = JobStatus::kFailed;
        res.error = err;
      }
    }
  }
  // seconds spans prepare + solve + verify, matching what a caller of the
  // old monolithic run_job measured — and what the tune store learns from.
  res.seconds = timer.seconds();
  switch (res.status) {
    case JobStatus::kOk:
      SBG_COUNTER_ADD("sched.jobs_ok", 1);
      // Every successful run (explicit or auto) refines later auto picks;
      // injected failures never reach here.
      if (spec.graph) {
        tune::record_run(tune::graph_key(spec.graph_name, *spec.graph),
                         spec.problem, res.resolved_variant, res.seconds,
                         static_cast<double>(res.rounds));
      }
      break;
    case JobStatus::kFailed:
      SBG_COUNTER_ADD("sched.jobs_failed", 1);
      break;
    case JobStatus::kCancelled:
      SBG_COUNTER_ADD("sched.jobs_cancelled", 1);
      break;
  }
  return res;
}

UpdateJobResult run_update_job(const UpdateJobSpec& spec,
                               double deadline_ms) {
  UpdateJobResult res;
  Timer timer;
  CancelToken token;
  token.set_deadline_ms(deadline_ms);
  ScopedCancel install(&token);
  try {
    if (!spec.session) throw InputError("update job has no session");
    SBG_SPAN(spec.name.empty() ? "sched.update_job" : spec.name);
    SBG_SPAN_PERF("sched.update_job");
    poll_cancellation();
    res.outcome = spec.session->update(spec.batch, spec.verify);
    if (!res.outcome.oracle_error.empty()) {
      res.status = JobStatus::kFailed;
      res.error = "oracle: " + res.outcome.oracle_error;
    } else {
      res.status = JobStatus::kOk;
    }
  } catch (const JobCancelled& e) {
    res.status = JobStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res.status = JobStatus::kFailed;
    res.error = e.what();
  }
  res.seconds = timer.seconds();
  switch (res.status) {
    case JobStatus::kOk:
      SBG_COUNTER_ADD("sched.update_jobs_ok", 1);
      break;
    case JobStatus::kFailed:
      SBG_COUNTER_ADD("sched.update_jobs_failed", 1);
      break;
    case JobStatus::kCancelled:
      SBG_COUNTER_ADD("sched.update_jobs_cancelled", 1);
      break;
  }
  return res;
}

BatchReport run_batch(const std::vector<JobSpec>& specs,
                      const BatchOptions& opt) {
  SBG_SPAN("sched.batch");
  BatchReport report;
  report.specs = specs;
  report.options = opt;
  report.results.resize(specs.size());

  const int workers =
      std::max(1, std::min<int>(opt.jobs, static_cast<int>(specs.size())));
  std::atomic<std::size_t> next{0};
  // Mid-batch telemetry flushes: a long batch killed at job 400 of 500 used
  // to lose every EWMA it had learned (the only save was post-join). One
  // worker at a time flushes the dirty store every few seconds; the
  // post-join save below still catches the tail.
  constexpr double kFlushIntervalSeconds = 5.0;
  std::atomic<bool> flush_claimed{false};
  Timer flush_timer;
  std::atomic<std::int64_t> last_flush_ms{0};
  Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      // Each std::thread is its own OpenMP contention group: this caps the
      // team of every parallel region THIS worker's jobs open, without
      // touching the other workers or the caller.
      set_num_threads(std::max(1, opt.per_job_threads));
      SBG_TRACE_THREAD_NAME("sched-worker-" + std::to_string(w));
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) break;
        report.results[i] = run_job(specs[i], opt.deadline_ms, opt.verify);
        report.results[i].worker = w;
        const auto now_ms = std::int64_t(flush_timer.seconds() * 1000.0);
        if (now_ms - last_flush_ms.load(std::memory_order_relaxed) >=
                std::int64_t(kFlushIntervalSeconds * 1000.0) &&
            !flush_claimed.exchange(true)) {
          last_flush_ms.store(now_ms, std::memory_order_relaxed);
          tune::save_global_store();
          flush_claimed.store(false);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  report.wall_seconds = timer.seconds();
  // Persist the telemetry the batch just produced so the next process
  // starts warm. No-op unless a store path is configured and runs landed;
  // IO failure must not fail a batch that already has its results.
  tune::save_global_store();
  SBG_COUNTER_ADD("sched.batches", 1);
  SBG_GAUGE_SET("sched.last_batch_wall_seconds", report.wall_seconds);
  return report;
}

std::vector<JobSpec> table1_matrix(
    const std::vector<std::pair<std::string, std::shared_ptr<const CsrGraph>>>&
        graphs,
    std::uint64_t seed) {
  // The paper's Table I: per problem, the baseline engine plus the three
  // decomposition composites under that engine.
  static constexpr const char* kMm[] = {"gm", "bridge-gm", "rand-gm",
                                        "degk-gm"};
  static constexpr const char* kColor[] = {"vb", "bridge-vb", "rand-vb",
                                           "degk-vb"};
  static constexpr const char* kMis[] = {"luby", "bridge", "rand", "degk2"};
  std::vector<JobSpec> specs;
  for (const auto& [gname, graph] : graphs) {
    const auto add = [&](Problem p, const char* variant) {
      JobSpec s;
      s.graph_name = gname;
      s.graph = graph;
      s.problem = p;
      s.variant = variant;
      s.seed = seed;
      s.name = gname + "/" + to_string(p) + "/" + variant;
      specs.push_back(std::move(s));
    };
    for (const char* v : kMm) add(Problem::kMM, v);
    for (const char* v : kColor) add(Problem::kColor, v);
    for (const char* v : kMis) add(Problem::kMis, v);
  }
  return specs;
}

}  // namespace sbg::sched
